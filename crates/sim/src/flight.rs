//! Anomaly-triggered flight recorder: a fixed-capacity ring of telemetry
//! records plus trigger predicates that dump the recent window to an
//! "incident" file the moment something goes wrong.
//!
//! Full JSONL tracing of a long sweep is exactly the overhead problem
//! profile-driven emulation exists to avoid, yet the interesting runs are
//! the ones where the controller misbehaved — and by then the evidence is
//! gone unless something was recording. The flight recorder squares that:
//!
//! - [`RingSink`] is a [`TraceSink`] that keeps only the newest
//!   `capacity` records, evicting deterministically from the front. Fed
//!   from the canonical-cell merge in [`crate::exec`], its contents are
//!   byte-identical at any `--jobs` (the parallel-determinism suite holds
//!   this).
//! - [`FlightRecorder`] wraps the ring with **trigger predicates**: a
//!   dual-window SLO burn-rate PAGE (the online mirror of the
//!   `trace-summary` digest), [`Event::SafeModeTransition`] into a
//!   degraded state, [`Event::FaultInjected`], an attribution-conservation
//!   near-miss, and [`Event::WatchdogStall`]. When one fires, the buffered
//!   records from the last [`FlightConfig::window`] of sim time are dumped
//!   to `incident-NNNN-<trigger>.jsonl` in [`FlightConfig::dir`] —
//!   filenames carry a sequence number, never a wall-clock timestamp, so a
//!   rerun produces byte-identical incident files.
//! - Dumps are **span-balanced**: a window sliced out of the stream would
//!   contain closes whose opens fell outside it (and vice versa), which
//!   the strict `trace-export --perfetto` path rejects. The dumper drops
//!   orphan closes and synthesizes closes at the dump end for spans still
//!   open, and pins the run's [`Event::SloTargets`] preamble so the
//!   incident file is self-contained for burn-rate analysis. The result is
//!   consumable by `repro trace-summary` and `repro trace-export
//!   --perfetto` unchanged.
//!
//! The recorder can optionally forward every record to an inner sink
//! (e.g. a [`crate::telemetry::JsonlSink`] when full tracing is also
//! requested), so `--flight` composes with `--trace` instead of competing
//! with it.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::attrib;
use crate::span::SpanKind;
use crate::telemetry::{Event, NodeHealth, NullSink, ResilienceMode, TraceRecord, TraceSink};
use crate::time::{SimDuration, SimTime};

/// A [`TraceSink`] that retains only the newest `capacity` records.
///
/// Eviction is strictly FIFO on arrival order, so the retained suffix is a
/// pure function of the record stream — no clocks, no sampling. Feeding it
/// the deterministic merged stream from [`crate::exec::sweep_traced`]
/// therefore yields byte-identical contents at any worker count.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    evicted: u64,
}

impl RingSink {
    /// An empty ring retaining at most `capacity` records (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            evicted: 0,
        }
    }

    /// The retention limit.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted from the front so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// The retained records as a vector, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<TraceRecord> {
        self.buf.iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, record: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(record.clone());
    }
}

/// Which predicate fired a flight-recorder dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Both burn windows of one SLO metric exceeded 1× budget (the online
    /// mirror of the `trace-summary` PAGE alert).
    SloBurnPage,
    /// The resilience state machine entered Degraded or SafeMode.
    SafeMode,
    /// The fault plane activated a scripted fault.
    Fault,
    /// An attribution interval's time conservation error entered the
    /// near-miss band below the hard [`attrib::EPSILON`] gate.
    AttribNearMiss,
    /// The run-health watchdog reported a stalled cell.
    WatchdogStall,
    /// The fleet router declared a node Down
    /// ([`Event::NodeHealthTransition`] into [`NodeHealth::Down`]).
    NodeDown,
}

impl TriggerKind {
    /// Stable slug used in incident filenames and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TriggerKind::SloBurnPage => "slo-burn-page",
            TriggerKind::SafeMode => "safe-mode",
            TriggerKind::Fault => "fault",
            TriggerKind::AttribNearMiss => "attrib-near-miss",
            TriggerKind::WatchdogStall => "watchdog-stall",
            TriggerKind::NodeDown => "node-down",
        }
    }
}

/// Fraction of requests the SLO error budget allows to miss their
/// deadline; mirrors the `trace-summary` digest.
const ERROR_BUDGET: f64 = 0.01;

/// Tumbling-window lengths (seconds) of the dual-window burn check; the
/// short window catches fast burns, the long one filters blips.
const BURN_WINDOW_SECS: [u64; 2] = [10, 60];

/// How far a timestamp may rise above the window walk's running minimum
/// before it is treated as the previous cell's tail rather than
/// within-cell clock jitter. Comfortably above one controller interval
/// (1 s), comfortably below any cell duration.
const RESTART_JITTER_SECS: u64 = 2;

/// One tumbling window length's online breach accounting for both SLO
/// metrics (index 0 = TTFT, 1 = TPOT).
#[derive(Debug, Clone, Default)]
struct BurnWindow {
    width_secs: u64,
    idx: Option<u64>,
    count: [u64; 2],
    breach: [u64; 2],
    last_burn: [Option<f64>; 2],
}

impl BurnWindow {
    fn new(width_secs: u64) -> Self {
        BurnWindow {
            width_secs,
            ..BurnWindow::default()
        }
    }

    /// Finalizes the previous window when `at` crosses into a new one.
    fn roll(&mut self, at: SimTime) {
        let idx = at.as_nanos() / (self.width_secs * 1_000_000_000);
        match self.idx {
            Some(prev) if prev == idx => {}
            Some(prev) => {
                for m in 0..2 {
                    if self.count[m] > 0 {
                        self.last_burn[m] =
                            Some(self.breach[m] as f64 / self.count[m] as f64 / ERROR_BUDGET);
                    }
                    // Windows with no traffic at all are not burning.
                    if idx > prev + 1 || idx < prev {
                        self.last_burn[m] = Some(0.0);
                    }
                }
                self.count = [0; 2];
                self.breach = [0; 2];
                self.idx = Some(idx);
            }
            None => self.idx = Some(idx),
        }
    }

    fn observe(&mut self, metric: usize, breached: bool) {
        self.count[metric] += 1;
        self.breach[metric] += u64::from(breached);
    }

    fn burning(&self, metric: usize) -> bool {
        self.last_burn[metric].is_some_and(|b| b > 1.0)
    }
}

/// Online dual-window burn tracker over [`Event::RequestFinished`]
/// samples, armed by the run's [`Event::SloTargets`] preamble.
#[derive(Debug, Clone)]
struct BurnTracker {
    targets: Option<(f64, f64)>,
    windows: [BurnWindow; 2],
    paging: bool,
}

impl BurnTracker {
    fn new() -> Self {
        BurnTracker {
            targets: None,
            windows: [
                BurnWindow::new(BURN_WINDOW_SECS[0]),
                BurnWindow::new(BURN_WINDOW_SECS[1]),
            ],
            paging: false,
        }
    }

    /// A new run's targets reset all windowed state (merged multi-run
    /// streams restart the clock at each cell boundary).
    fn arm(&mut self, ttft_secs: f64, tpot_secs: f64) {
        *self = BurnTracker::new();
        self.targets = Some((ttft_secs, tpot_secs));
    }

    /// Feeds one finished request; returns `true` on the rising edge of a
    /// PAGE condition (some metric burning >1× in both window lengths).
    fn on_finished(
        &mut self,
        at: SimTime,
        ttft_secs: f64,
        generated: usize,
        mean_tpot_secs: f64,
    ) -> bool {
        let Some((ttft_target, tpot_target)) = self.targets else {
            return false;
        };
        for w in &mut self.windows {
            w.roll(at);
            w.observe(0, ttft_secs > ttft_target);
            if generated > 0 {
                w.observe(1, mean_tpot_secs > tpot_target);
            }
        }
        let page = (0..2).any(|m| self.windows.iter().all(|w| w.burning(m)));
        let rising = page && !self.paging;
        self.paging = page;
        rising
    }
}

/// Static configuration of a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Directory incident files are written into (created on demand).
    pub dir: PathBuf,
    /// Ring retention limit in records.
    pub capacity: usize,
    /// How much trailing sim time a dump covers.
    pub window: SimDuration,
    /// Minimum sim time between dumps within one run (a clock restart —
    /// the next cell in a merged stream — always re-arms).
    pub cooldown: SimDuration,
    /// Hard cap on incident files per recorder lifetime; triggers beyond
    /// it are counted but not dumped.
    pub max_incidents: usize,
    /// Fraction of [`attrib::EPSILON`] above which an attribution
    /// interval's relative time-conservation error counts as a near-miss.
    pub near_miss_frac: f64,
}

impl FlightConfig {
    /// Defaults: 4096-record ring, 30 s window, 10 s cooldown, at most 32
    /// incidents, near-miss at half the conservation epsilon.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightConfig {
            dir: dir.into(),
            capacity: 4096,
            window: SimDuration::from_secs(30),
            cooldown: SimDuration::from_secs(10),
            max_incidents: 32,
            near_miss_frac: 0.5,
        }
    }
}

/// One dumped incident's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// 1-based dump sequence number (also in the filename).
    pub seq: usize,
    /// Which predicate fired.
    pub trigger: TriggerKind,
    /// Sim time of the triggering record.
    pub at: SimTime,
    /// Where the JSONL dump was written.
    pub path: PathBuf,
    /// Records in the dump (after span balancing).
    pub events: usize,
}

/// Point-in-time counters for the live endpoint's flight gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Records currently in the ring.
    pub occupancy: usize,
    /// Ring retention limit.
    pub capacity: usize,
    /// Records evicted from the ring so far.
    pub evicted: u64,
    /// Trigger predicate firings (including suppressed ones).
    pub triggers: u64,
    /// Incident files written.
    pub incidents: usize,
}

/// The flight recorder: ring + triggers + incident dumps, optionally
/// forwarding every record to an inner sink.
#[derive(Debug)]
pub struct FlightRecorder<S: TraceSink = NullSink> {
    cfg: FlightConfig,
    ring: RingSink,
    burn: BurnTracker,
    pinned_targets: Option<TraceRecord>,
    /// Latest [`Event::NodeMetricsSnapshot`] seen per node, pinned into
    /// `node-down` dumps so the incident carries the offending node's
    /// metric state even when the snapshot aged out of the window.
    pinned_node_metrics: std::collections::BTreeMap<usize, TraceRecord>,
    last_dump_at: Option<SimTime>,
    triggers: u64,
    incidents: Vec<Incident>,
    errors: Vec<String>,
    inner: Option<S>,
}

impl FlightRecorder<NullSink> {
    /// A recorder with no inner sink.
    #[must_use]
    pub fn new(cfg: FlightConfig) -> Self {
        Self::with_inner_opt(cfg, None)
    }
}

impl<S: TraceSink> FlightRecorder<S> {
    /// A recorder forwarding every record to `inner` as well.
    #[must_use]
    pub fn with_inner(cfg: FlightConfig, inner: S) -> Self {
        Self::with_inner_opt(cfg, Some(inner))
    }

    /// A recorder with an optional inner sink.
    #[must_use]
    pub fn with_inner_opt(cfg: FlightConfig, inner: Option<S>) -> Self {
        let capacity = cfg.capacity;
        FlightRecorder {
            cfg,
            ring: RingSink::new(capacity),
            burn: BurnTracker::new(),
            pinned_targets: None,
            pinned_node_metrics: std::collections::BTreeMap::new(),
            last_dump_at: None,
            triggers: 0,
            incidents: Vec::new(),
            errors: Vec::new(),
            inner,
        }
    }

    /// The wrapped inner sink, if any.
    pub fn inner(&self) -> Option<&S> {
        self.inner.as_ref()
    }

    /// The ring buffer (current retained suffix of the stream).
    #[must_use]
    pub fn ring(&self) -> &RingSink {
        &self.ring
    }

    /// Incidents dumped so far, in order.
    #[must_use]
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// I/O errors hit while writing incident files (dumps never panic the
    /// run; the driver surfaces these and exits nonzero).
    #[must_use]
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Counters for the live endpoint.
    #[must_use]
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            occupancy: self.ring.len(),
            capacity: self.ring.capacity(),
            evicted: self.ring.evicted(),
            triggers: self.triggers,
            incidents: self.incidents.len(),
        }
    }

    /// Which predicate (if any) `record` fires. Also advances the online
    /// burn tracker.
    fn trigger_for(&mut self, record: &TraceRecord) -> Option<TriggerKind> {
        match &record.event {
            Event::SafeModeTransition {
                to: ResilienceMode::Degraded | ResilienceMode::SafeMode,
                ..
            } => Some(TriggerKind::SafeMode),
            Event::FaultInjected { .. } => Some(TriggerKind::Fault),
            Event::NodeHealthTransition {
                to: NodeHealth::Down,
                ..
            } => Some(TriggerKind::NodeDown),
            Event::WatchdogStall { .. } => Some(TriggerKind::WatchdogStall),
            Event::AttributionSample { dt_secs, time, .. } if *dt_secs > 0.0 => {
                let rel = (time.sum() - dt_secs).abs() / dt_secs;
                (rel > self.cfg.near_miss_frac * attrib::EPSILON)
                    .then_some(TriggerKind::AttribNearMiss)
            }
            Event::RequestFinished {
                generated,
                mean_tpot_secs,
                ttft_secs,
                ..
            } => self
                .burn
                .on_finished(record.at, *ttft_secs, *generated, *mean_tpot_secs)
                .then_some(TriggerKind::SloBurnPage),
            _ => None,
        }
    }

    /// Cooldown gate: a dump is allowed on the first trigger, after
    /// `cooldown` of sim time, or whenever the clock restarted (a new cell
    /// in a merged stream).
    fn dump_allowed(&self, at: SimTime) -> bool {
        if self.incidents.len() >= self.cfg.max_incidents {
            return false;
        }
        match self.last_dump_at {
            None => true,
            Some(last) => at < last || at.saturating_since(last) >= self.cfg.cooldown,
        }
    }

    /// The ring suffix covering the trailing dump window before `at`.
    ///
    /// The recorder sees records in **emission order**, where timestamps
    /// are non-decreasing only up to a small jitter (the engine's prefill
    /// and decode clocks interleave within a controller interval). Walking
    /// backward therefore tracks the minimum timestamp seen so far and
    /// stops at the first record jumping *up* past it by more than
    /// [`RESTART_JITTER_SECS`] — that jump is the tail of the previous
    /// cell in a merged stream, so a slice never crosses a cell boundary.
    /// It also stops once records age out of `[at - window, at]`.
    fn window_slice(&self, at: SimTime) -> Vec<TraceRecord> {
        let jitter = SimDuration::from_secs(RESTART_JITTER_SECS);
        let mut slice: Vec<TraceRecord> = Vec::new();
        let mut floor = at;
        for r in self.ring.buf.iter().rev() {
            if r.at > floor + jitter || at.saturating_since(r.at) > self.cfg.window {
                break;
            }
            floor = floor.min(r.at);
            slice.push(r.clone());
        }
        slice.reverse();
        slice
    }

    fn dump(&mut self, trigger: TriggerKind, at: SimTime, node: Option<usize>) {
        let mut slice = self.window_slice(at);
        // Pin the offending node's latest metric snapshot so a `node-down`
        // incident carries the node's counters even when the snapshot aged
        // out of the window.
        if let Some(node) = node {
            if let Some(pinned) = self.pinned_node_metrics.get(&node) {
                if !slice.iter().any(|r| {
                    matches!(&r.event, Event::NodeMetricsSnapshot { node: n, .. } if *n == node)
                }) {
                    slice.insert(0, pinned.clone());
                }
            }
        }
        // Pin the run's SLO targets so the incident is self-contained for
        // burn-rate analysis even when the preamble aged out of the window.
        if let Some(pinned) = &self.pinned_targets {
            if !slice
                .iter()
                .any(|r| matches!(r.event, Event::SloTargets { .. }))
            {
                slice.insert(0, pinned.clone());
            }
        }
        let balanced = balance_spans(slice, at);
        if balanced.is_empty() {
            return;
        }
        let seq = self.incidents.len() + 1;
        let path = self
            .cfg
            .dir
            .join(format!("incident-{seq:04}-{}.jsonl", trigger.label()));
        match write_jsonl(&path, &balanced) {
            Ok(()) => {
                self.last_dump_at = Some(at);
                self.incidents.push(Incident {
                    seq,
                    trigger,
                    at,
                    path,
                    events: balanced.len(),
                });
            }
            Err(e) => self.errors.push(format!("{}: {e}", path.display())),
        }
    }
}

impl<S: TraceSink> TraceSink for FlightRecorder<S> {
    fn record(&mut self, record: &TraceRecord) {
        if let Some(inner) = &mut self.inner {
            inner.record(record);
        }
        if let Event::SloTargets {
            ttft_secs,
            tpot_secs,
        } = record.event
        {
            self.burn.arm(ttft_secs, tpot_secs);
            self.pinned_targets = Some(record.clone());
        }
        if let Event::NodeMetricsSnapshot { node, .. } = &record.event {
            self.pinned_node_metrics.insert(*node, record.clone());
        }
        self.ring.record(record);
        if let Some(trigger) = self.trigger_for(record) {
            self.triggers += 1;
            if self.dump_allowed(record.at) {
                let node = match &record.event {
                    Event::NodeHealthTransition { node, .. } => Some(*node),
                    _ => None,
                };
                self.dump(trigger, record.at, node);
            }
        }
    }

    fn flush_sink(&mut self) {
        if let Some(inner) = &mut self.inner {
            inner.flush_sink();
        }
    }
}

/// Makes a window slice span-balanced: closes whose opens fell outside
/// the window are dropped, and spans still open at the end get a
/// synthesized close at `end` in LIFO order — exactly the shape
/// [`crate::span::collect_spans`] and the Perfetto exporter require.
/// Unresolved *parents* need no fixup: `collect_spans` degrades those
/// spans to roots by design.
fn balance_spans(records: Vec<TraceRecord>, end: SimTime) -> Vec<TraceRecord> {
    let mut open: Vec<(String, u64, SpanKind)> = Vec::new();
    let mut kept: Vec<TraceRecord> = Vec::with_capacity(records.len());
    for r in records {
        match &r.event {
            Event::SpanOpen {
                id, kind, track, ..
            } => {
                open.push((track.clone(), *id, *kind));
                kept.push(r);
            }
            Event::SpanClose { id, track, .. } => {
                // Drop orphan closes whose open predates the window.
                if let Some(pos) = open.iter().rposition(|(t, i, _)| t == track && *i == *id) {
                    open.remove(pos);
                    kept.push(r);
                }
            }
            _ => kept.push(r),
        }
    }
    for (track, id, kind) in open.into_iter().rev() {
        kept.push(TraceRecord {
            at: end,
            event: Event::SpanClose { id, kind, track },
        });
    }
    kept
}

/// Writes `records` as one JSON object per line, creating the parent
/// directory on demand.
fn write_jsonl(path: &Path, records: &[TraceRecord]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = BufWriter::new(File::create(path)?);
    for r in records {
        let line = serde_json::to_string(r).expect("trace records always serialize");
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{collect_spans, SpanId};
    use crate::telemetry::parse_jsonl;

    fn rec(at_secs: f64, event: Event) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_secs_f64(at_secs),
            event,
        }
    }

    fn finished(id: u64, ttft: f64) -> Event {
        Event::RequestFinished {
            id,
            generated: 10,
            mean_tpot_secs: 0.05,
            ttft_secs: ttft,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aum-flight-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn ring_keeps_exactly_the_newest_capacity_records() {
        let mut ring = RingSink::new(3);
        for i in 0..7u64 {
            ring.record(&rec(i as f64, finished(i, 0.1)));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 4);
        let ids: Vec<f64> = ring.records().map(|r| r.at.as_secs_f64()).collect();
        assert_eq!(ids, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn fault_trigger_dumps_a_window_that_round_trips() {
        let dir = temp_dir("fault");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        fr.record(&rec(
            0.0,
            Event::SloTargets {
                ttft_secs: 3.0,
                tpot_secs: 0.12,
            },
        ));
        for i in 0..50u64 {
            fr.record(&rec(i as f64, finished(i, 0.2)));
        }
        fr.record(&rec(
            50.0,
            Event::FaultInjected {
                kind: "BandwidthDegrade".to_string(),
                detail: "frac 0.60".to_string(),
            },
        ));
        assert_eq!(fr.incidents().len(), 1);
        assert!(fr.errors().is_empty());
        let inc = &fr.incidents()[0];
        assert_eq!(inc.trigger, TriggerKind::Fault);
        assert!(inc.path.ends_with("incident-0001-fault.jsonl"));
        let text = std::fs::read_to_string(&inc.path).expect("read dump");
        let parsed = parse_jsonl(&text).expect("dump parses");
        assert_eq!(parsed.len(), inc.events);
        // The 30 s window keeps t ∈ [20, 50]; the SloTargets preamble is
        // pinned back in even though t=0 aged out of the window.
        assert!(matches!(parsed[0].event, Event::SloTargets { .. }));
        assert!(parsed
            .iter()
            .any(|r| matches!(r.event, Event::FaultInjected { .. })));
        assert!(!parsed
            .iter()
            .any(|r| r.at.as_secs_f64() < 20.0 && !matches!(r.event, Event::SloTargets { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn node_down_transition_triggers_a_dump_and_other_transitions_do_not() {
        let dir = temp_dir("node-down");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        for i in 0..20u64 {
            fr.record(&rec(i as f64, finished(i, 0.2)));
        }
        // Healthy→Suspect is advisory: no dump.
        fr.record(&rec(
            20.0,
            Event::NodeHealthTransition {
                node: 1,
                from: NodeHealth::Healthy,
                to: NodeHealth::Suspect,
                reason: "1 missed heartbeat".to_string(),
            },
        ));
        assert_eq!(fr.incidents().len(), 0);
        fr.record(&rec(
            22.0,
            Event::NodeHealthTransition {
                node: 1,
                from: NodeHealth::Suspect,
                to: NodeHealth::Down,
                reason: "3 missed heartbeats".to_string(),
            },
        ));
        assert_eq!(fr.incidents().len(), 1);
        let inc = &fr.incidents()[0];
        assert_eq!(inc.trigger, TriggerKind::NodeDown);
        assert!(inc.path.ends_with("incident-0001-node-down.jsonl"));
        let text = std::fs::read_to_string(&inc.path).expect("read dump");
        let parsed = parse_jsonl(&text).expect("dump parses");
        assert!(parsed.iter().any(|r| matches!(
            r.event,
            Event::NodeHealthTransition {
                to: NodeHealth::Down,
                ..
            }
        )));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn node_down_dump_pins_the_offending_nodes_metric_snapshot() {
        use crate::telemetry::MetricsSnapshot;
        use std::sync::Arc;

        let dir = temp_dir("node-down-snap");
        let mut cfg = FlightConfig::new(&dir);
        cfg.window = SimDuration::from_secs(10);
        let mut fr = FlightRecorder::new(cfg);
        let snapshot_for = |at: f64, completed: u64| MetricsSnapshot {
            at: SimTime::from_secs_f64(at),
            counters: Arc::new([("completed".to_string(), completed)].into_iter().collect()),
            gauges: Arc::new(std::collections::BTreeMap::new()),
        };
        // Snapshots for two nodes, both far outside the 10 s window at
        // trigger time. Only node 1's (the one that goes Down) is pinned.
        fr.record(&rec(
            5.0,
            Event::NodeMetricsSnapshot {
                node: 0,
                label: "node0/GenA".to_string(),
                snapshot: snapshot_for(5.0, 7),
            },
        ));
        fr.record(&rec(
            6.0,
            Event::NodeMetricsSnapshot {
                node: 1,
                label: "node1/GenB".to_string(),
                snapshot: snapshot_for(6.0, 3),
            },
        ));
        for i in 31..40u64 {
            fr.record(&rec(i as f64, finished(i, 0.2)));
        }
        fr.record(&rec(
            40.0,
            Event::NodeHealthTransition {
                node: 1,
                from: NodeHealth::Suspect,
                to: NodeHealth::Down,
                reason: "3 missed heartbeats".to_string(),
            },
        ));
        assert_eq!(fr.incidents().len(), 1);
        let text = std::fs::read_to_string(&fr.incidents()[0].path).expect("read dump");
        let parsed = parse_jsonl(&text).expect("dump parses");
        let snaps: Vec<usize> = parsed
            .iter()
            .filter_map(|r| match &r.event {
                Event::NodeMetricsSnapshot { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(snaps, vec![1], "only the downed node's snapshot is pinned");
        assert!(parsed.iter().any(|r| matches!(
            &r.event,
            Event::NodeMetricsSnapshot { label, .. } if label == "node1/GenB"
        )));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dumps_are_span_balanced_for_strict_consumers() {
        let dir = temp_dir("spans");
        let mut cfg = FlightConfig::new(&dir);
        cfg.window = SimDuration::from_secs(10);
        let mut fr = FlightRecorder::new(cfg);
        let track = "aum/test".to_string();
        let outer = SpanId::derive(SpanKind::ControllerInterval, 1).0;
        let inner = SpanId::derive(SpanKind::ControllerInterval, 2).0;
        let stale = SpanId::derive(SpanKind::ControllerInterval, 0).0;
        // A span that opened long before the window: its close at t=46
        // lands inside the window as an orphan and must be dropped.
        fr.record(&rec(
            1.0,
            Event::SpanOpen {
                id: stale,
                parent: None,
                kind: SpanKind::ControllerInterval,
                track: track.clone(),
                label: "interval 0".to_string(),
            },
        ));
        fr.record(&rec(
            46.0,
            Event::SpanClose {
                id: stale,
                kind: SpanKind::ControllerInterval,
                track: track.clone(),
            },
        ));
        // A nested pair that is still open at the trigger: both must get
        // synthesized closes, inner before outer.
        fr.record(&rec(
            47.0,
            Event::SpanOpen {
                id: outer,
                parent: None,
                kind: SpanKind::ControllerInterval,
                track: track.clone(),
                label: "interval 1".to_string(),
            },
        ));
        fr.record(&rec(
            48.0,
            Event::SpanOpen {
                id: inner,
                parent: Some(outer),
                kind: SpanKind::ControllerInterval,
                track: track.clone(),
                label: "interval 2".to_string(),
            },
        ));
        fr.record(&rec(
            50.0,
            Event::FaultInjected {
                kind: "CoreOffline".to_string(),
                detail: "2 cores".to_string(),
            },
        ));
        let inc = &fr.incidents()[0];
        let text = std::fs::read_to_string(&inc.path).expect("read dump");
        let parsed = parse_jsonl(&text).expect("dump parses");
        let forest = collect_spans(&parsed).expect("balanced spans");
        assert_eq!(forest.nodes.len(), 2, "outer + inner; stale span dropped");
        let closes = parsed
            .iter()
            .filter(|r| matches!(r.event, Event::SpanClose { .. }))
            .count();
        assert_eq!(closes, 2, "orphan close dropped, two synthesized");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cooldown_suppresses_but_clock_restart_rearms() {
        let dir = temp_dir("cooldown");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        let fault = || Event::FaultInjected {
            kind: "BeSurge".to_string(),
            detail: "x3".to_string(),
        };
        fr.record(&rec(30.0, fault()));
        fr.record(&rec(31.0, fault())); // within 10 s cooldown → suppressed
        assert_eq!(fr.incidents().len(), 1);
        assert_eq!(fr.stats().triggers, 2);
        fr.record(&rec(45.0, fault())); // past cooldown → dumps
        assert_eq!(fr.incidents().len(), 2);
        fr.record(&rec(2.0, fault())); // clock restart (next cell) → dumps
        assert_eq!(fr.incidents().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn burn_page_fires_on_sustained_dual_window_breach() {
        let dir = temp_dir("burn");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        fr.record(&rec(
            0.0,
            Event::SloTargets {
                ttft_secs: 0.5,
                tpot_secs: 0.1,
            },
        ));
        // Every TTFT violates: each completed 10 s and 60 s window burns at
        // 100×. The page needs one completed window of each length, i.e.
        // the first sample past t=60.
        let mut fired_at = None;
        for i in 0..40u64 {
            let at = i as f64 * 2.0;
            fr.record(&rec(at, finished(i, 1.2)));
            if !fr.incidents().is_empty() && fired_at.is_none() {
                fired_at = Some(at);
            }
        }
        let fired_at = fired_at.expect("page must fire");
        assert!(fired_at >= 60.0, "needs a completed long window");
        assert_eq!(fr.incidents()[0].trigger, TriggerKind::SloBurnPage);
        // Healthy traffic never pages.
        let dir2 = temp_dir("burn-ok");
        let mut ok = FlightRecorder::new(FlightConfig::new(&dir2));
        ok.record(&rec(
            0.0,
            Event::SloTargets {
                ttft_secs: 3.0,
                tpot_secs: 0.12,
            },
        ));
        for i in 0..200u64 {
            ok.record(&rec(i as f64, finished(i, 0.2)));
        }
        assert!(ok.incidents().is_empty());
        assert_eq!(ok.stats().triggers, 0);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn attrib_near_miss_triggers_inside_the_band() {
        let dir = temp_dir("attrib");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        let sample = |err: f64| {
            let dt = 0.5;
            let mut time = attrib::CauseVec::zero();
            time.add(attrib::Cause::Compute, dt * (1.0 + err));
            Event::AttributionSample {
                region: attrib::Region::AuHigh,
                dt_secs: dt,
                time,
                energy: attrib::CauseVec::zero(),
            }
        };
        fr.record(&rec(1.0, sample(1e-12))); // healthy: far below the band
        assert_eq!(fr.stats().triggers, 0);
        fr.record(&rec(2.0, sample(0.8 * attrib::EPSILON))); // near-miss band
        assert_eq!(fr.stats().triggers, 1);
        assert_eq!(fr.incidents()[0].trigger, TriggerKind::AttribNearMiss);
        std::fs::remove_dir_all(&dir).ok();
    }
}
