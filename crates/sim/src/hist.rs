//! Mergeable log-linear latency histograms (HDR-style).
//!
//! [`LogHistogram`] buckets positive values on a log-linear grid: powers
//! of two define octaves and each octave splits into [`SUB_BUCKETS`]
//! equal-width linear buckets, so the relative bucket width never exceeds
//! `1/SUB_BUCKETS` (≈ 0.78 %). The boundaries are *fixed* — independent of
//! the data — which makes two histograms mergeable by element-wise count
//! addition: `merge(a, b)` has exactly the bucket counts of histogramming
//! `a ∪ b`, no matter how observations were split across workers. That is
//! the property the deterministic sweep executor
//! ([`crate::exec::sweep_traced_hists`]) relies on to keep quantile
//! readouts byte-identical at every worker count.
//!
//! The covered range is `[2^-20, 2^12)` seconds (≈ 1 µs to ≈ 68 min);
//! values below it (including zero and negatives) land in an underflow
//! bucket, values at or above it in an overflow bucket. Non-finite values
//! are ignored entirely, matching [`crate::stats::Samples`].

use serde::{content_get, Content, DeError, Deserialize, Serialize};

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 128;

/// Exponent of the smallest bucketed value: `2^MIN_EXP` seconds.
pub const MIN_EXP: i32 = -20;

/// Exponent one past the largest bucketed value: values `≥ 2^MAX_EXP`
/// overflow.
pub const MAX_EXP: i32 = 12;

/// Number of octaves covered.
pub const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;

/// Total bucket count of the fixed grid.
pub const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// Exact power of two as an `f64`, via bit construction (no libm rounding).
fn pow2(exp: i32) -> f64 {
    f64::from_bits(((1023 + exp) as u64) << 52)
}

/// The smallest bucketed value, `2^MIN_EXP`.
#[must_use]
pub fn min_value() -> f64 {
    pow2(MIN_EXP)
}

/// One past the largest bucketed value, `2^MAX_EXP`.
#[must_use]
pub fn max_value() -> f64 {
    pow2(MAX_EXP)
}

/// A mergeable log-linear histogram with fixed bucket boundaries.
///
/// Equality compares the full bucket state (counts, under/overflow, total
/// count and sum), so `assert_eq!` on two histograms — or on structs
/// embedding them, such as SLO reports — pins byte-level state identity.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Dense bucket counts, `BUCKETS` entries (serialized sparsely).
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// The fixed bucket index of an in-range value.
    fn index(v: f64) -> usize {
        debug_assert!(v >= min_value() && v < max_value());
        // Exponent straight from the bit pattern: exact and deterministic
        // (v is normal here because min_value() is far above subnormals).
        let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        let octave = (exp - MIN_EXP) as usize;
        // v / 2^exp ∈ [1, 2): the linear position within the octave.
        let frac = v * pow2(-exp) - 1.0;
        let sub = ((frac * SUB_BUCKETS as f64) as usize).min(SUB_BUCKETS - 1);
        octave * SUB_BUCKETS + sub
    }

    /// Lower and upper boundary of a bucket index.
    #[must_use]
    pub fn bucket_bounds(idx: usize) -> (f64, f64) {
        assert!(idx < BUCKETS, "bucket index {idx} out of range");
        let octave = idx / SUB_BUCKETS;
        let sub = idx % SUB_BUCKETS;
        let base = pow2(MIN_EXP + octave as i32);
        let step = base / SUB_BUCKETS as f64;
        let lo = base + step * sub as f64;
        (lo, lo + step)
    }

    /// Records one observation. Non-finite values are ignored; values
    /// outside the fixed range clamp into the under/overflow buckets (but
    /// still contribute to `count` and `sum`).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        if v < min_value() {
            self.underflow += 1;
        } else if v >= max_value() {
            self.overflow += 1;
        } else {
            self.counts[Self::index(v)] += 1;
        }
    }

    /// Merges another histogram into this one by element-wise count
    /// addition. Bucket state after the merge equals histogramming the
    /// union of both observation sets; `sum` is the f64 sum of both sums
    /// (deterministic for a fixed merge order).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded observations (for Prometheus `_sum`).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations below the bucketed range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the bucketed range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Quantile estimate, `q ∈ [0, 1]`, interpolated within the covering
    /// bucket — within one bucket width of the exact order statistic.
    /// Returns 0 when empty; underflowed ranks report 0 and overflowed
    /// ranks report the range ceiling.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut before = self.underflow as f64;
        if rank < before {
            return 0.0;
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let after = before + c as f64;
            if rank < after {
                let (lo, hi) = Self::bucket_bounds(idx);
                let frac = ((rank - before + 1.0) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
            before = after;
        }
        max_value()
    }

    /// The p50/p90/p99/p99.9 readout, in that order.
    #[must_use]
    pub fn percentiles(&self) -> [f64; 4] {
        [
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        ]
    }
}

impl FromIterator<f64> for LogHistogram {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut h = LogHistogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

// Sparse serialization: only non-empty buckets ship, as `[index, count]`
// pairs, so a histogram embedded in an outcome adds bytes proportional to
// its occupancy rather than the 4096-bucket grid.
impl Serialize for LogHistogram {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "buckets".to_owned(),
                Content::Seq(
                    self.nonzero_buckets()
                        .map(|(i, c)| Content::Seq(vec![Content::U64(i as u64), Content::U64(c)]))
                        .collect(),
                ),
            ),
            ("underflow".to_owned(), Content::U64(self.underflow)),
            ("overflow".to_owned(), Content::U64(self.overflow)),
            ("count".to_owned(), Content::U64(self.count)),
            ("sum".to_owned(), self.sum.to_content()),
        ])
    }
}

impl Deserialize for LogHistogram {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "LogHistogram", content))?;
        let field = |name: &str| {
            content_get(entries, name).ok_or_else(|| DeError::missing_field("LogHistogram", name))
        };
        let mut h = LogHistogram::new();
        let pairs: Vec<(u64, u64)> = Deserialize::from_content(field("buckets")?)?;
        for (idx, c) in pairs {
            let idx = usize::try_from(idx)
                .ok()
                .filter(|&i| i < BUCKETS)
                .ok_or_else(|| DeError::custom(format!("bucket index {idx} out of range")))?;
            h.counts[idx] = c;
        }
        h.underflow = Deserialize::from_content(field("underflow")?)?;
        h.overflow = Deserialize::from_content(field("overflow")?)?;
        h.count = Deserialize::from_content(field("count")?)?;
        h.sum = Deserialize::from_content(field("sum")?)?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentiles(), [0.0; 4]);
    }

    #[test]
    fn single_value_lands_within_its_bucket() {
        for v in [1e-5, 0.003, 0.5, 0.901, 7.3, 1000.0] {
            let mut h = LogHistogram::new();
            h.record(v);
            let q = h.quantile(0.5);
            let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::index(v));
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            assert!(
                q >= lo && q <= hi,
                "quantile {q} outside bucket [{lo}, {hi}]"
            );
            assert!((q - v).abs() / v <= 1.0 / SUB_BUCKETS as f64 + 1e-12);
        }
    }

    #[test]
    fn bucket_boundaries_tile_the_range() {
        let mut prev_hi = min_value();
        for idx in 0..BUCKETS {
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            assert_eq!(lo, prev_hi, "gap before bucket {idx}");
            assert!(hi > lo);
            prev_hi = hi;
        }
        assert_eq!(prev_hi, max_value());
    }

    #[test]
    fn out_of_range_values_clamp_not_panic() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(1e-9);
        h.record(1e9);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 4);
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), max_value());
    }

    #[test]
    fn merge_equals_union_bucket_for_bucket() {
        let a_vals = [0.01, 0.5, 0.5, 3.0, 1e-9];
        let b_vals = [0.02, 0.5, 80.0, 1e9];
        let a: LogHistogram = a_vals.iter().copied().collect();
        let b: LogHistogram = b_vals.iter().copied().collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let union: LogHistogram = a_vals.iter().chain(&b_vals).copied().collect();
        assert_eq!(
            merged.nonzero_buckets().collect::<Vec<_>>(),
            union.nonzero_buckets().collect::<Vec<_>>()
        );
        assert_eq!(merged.count(), union.count());
        assert_eq!(merged.underflow(), union.underflow());
        assert_eq!(merged.overflow(), union.overflow());
        assert!((merged.sum() - union.sum()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h: LogHistogram = (1..500).map(|i| f64::from(i) * 0.003).collect();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = h.quantile(f64::from(i) / 100.0);
            assert!(q >= last, "quantile not monotone at q={i}%");
            last = q;
        }
    }

    #[test]
    fn serde_round_trips_sparsely() {
        let h: LogHistogram = [0.01, 0.5, 0.5, 3.0, 0.0, 1e9].iter().copied().collect();
        let json = serde_json::to_string(&h).expect("serializes");
        // Sparse: far fewer entries than the 4096-bucket grid.
        assert!(json.len() < 400, "expected sparse encoding, got {json}");
        let back: LogHistogram = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, h);
    }

    #[test]
    fn percentile_readout_is_ordered() {
        let h: LogHistogram = (1..=1000).map(|i| f64::from(i) * 1e-3).collect();
        let [p50, p90, p99, p999] = h.percentiles();
        assert!(p50 < p90 && p90 < p99 && p99 <= p999);
        assert!((p50 - 0.5).abs() < 0.01, "p50 {p50}");
        assert!((p90 - 0.9).abs() < 0.01, "p90 {p90}");
        assert!((p99 - 0.99).abs() < 0.01, "p99 {p99}");
    }
}
