//! # aum-sim — deterministic simulation kernel
//!
//! Foundation crate of the AUM reproduction. It provides:
//!
//! - [`time`]: integer-nanosecond simulation clock types ([`time::SimTime`],
//!   [`time::SimDuration`]);
//! - [`event`]: a deterministic future-event list with stable tie-breaking;
//! - [`exec`]: a deterministic parallel sweep executor for independent,
//!   seeded grid cells ([`exec::sweep`], [`exec::sweep_traced`]);
//! - [`flight`]: an anomaly-triggered flight recorder — a fixed-capacity
//!   ring of telemetry records ([`flight::RingSink`]) with trigger
//!   predicates that dump span-balanced JSONL incident files
//!   ([`flight::FlightRecorder`]);
//! - [`live`]: a live run-health plane — shared snapshot, std-only
//!   `/metrics` endpoint ([`live::MetricsServer`]) and a wall-clock stall
//!   watchdog ([`live::Watchdog`]);
//! - [`rng`]: labelled deterministic random streams derived from one seed;
//! - [`stats`]: streaming summaries, exact quantiles, histograms, CDFs;
//! - [`hist`]: mergeable log-linear (HDR-style) latency histograms with
//!   fixed bucket boundaries and deterministic merge ([`hist::LogHistogram`]);
//! - [`series`]: zero-order-hold time series for telemetry;
//! - [`telemetry`]: typed event tracing ([`telemetry::Event`],
//!   [`telemetry::TraceSink`], [`telemetry::Tracer`]) and a metrics
//!   registry snapshotted per control interval;
//! - [`span`]: hierarchical request/iteration/interval spans over the
//!   telemetry stream ([`span::SpanId`], [`span::collect_spans`]);
//! - [`attrib`]: per-interval, per-region time/energy attribution ledger
//!   with conservation invariants ([`attrib::Ledger`]);
//! - [`prof`]: a host-wall-clock self-profiling plane — scoped timers,
//!   deterministic call/counter snapshots and collapsed-stack flamegraph
//!   rendering for profiling the simulator itself ([`prof::scope`],
//!   [`prof::snapshot`]);
//! - [`prom`]: Prometheus text-format rendering of metrics snapshots and
//!   attribution ledgers;
//! - [`report`]: aligned text tables used by the `repro` harness.
//!
//! Everything above this crate (platform model, LLM engine, AUM itself) is
//! built on these primitives, so a fixed experiment seed reproduces every
//! table and figure bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use aum_sim::event::EventQueue;
//! use aum_sim::rng::DetRng;
//! use aum_sim::stats::Samples;
//! use aum_sim::time::{SimDuration, SimTime};
//!
//! // A tiny M/D/1-style arrival simulation.
//! let mut rng = DetRng::from_seed(42).stream("arrivals");
//! let mut queue = EventQueue::new();
//! let mut t = SimTime::ZERO;
//! for i in 0..100 {
//!     t += SimDuration::from_secs_f64(rng.exponential(0.010));
//!     queue.schedule(t, i);
//! }
//! let mut gaps = Samples::new();
//! let mut last = SimTime::ZERO;
//! while let Some((at, _)) = queue.pop() {
//!     gaps.record((at - last).as_secs_f64());
//!     last = at;
//! }
//! assert_eq!(gaps.len(), 100);
//! assert!(gaps.mean() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod attrib;
pub mod event;
pub mod exec;
pub mod flight;
pub mod hist;
pub mod live;
pub mod prof;
pub mod prom;
pub mod report;
pub mod rng;
pub mod series;
pub mod span;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use attrib::{
    Cause, CauseVec, ConservationError, IntervalLedger, Ledger, Region, RegionSample,
};
pub use event::{EventId, EventQueue};
pub use exec::{jobs, set_jobs, sweep, sweep_jobs, sweep_traced, sweep_traced_hists, ExecStats};
pub use flight::{FlightConfig, FlightRecorder, FlightStats, Incident, RingSink, TriggerKind};
pub use hist::LogHistogram;
pub use live::{LiveState, MetricsServer, Watchdog};
pub use rng::DetRng;
pub use span::{collect_spans, SpanError, SpanForest, SpanId, SpanKind, SpanNode};
pub use stats::{Histogram, Samples, Summary};
pub use telemetry::{
    Event, JsonlSink, MemorySink, MetricsRegistry, MetricsSnapshot, NullSink, OrderingSink,
    TraceParseError, TraceRecord, TraceSink, Tracer,
};
pub use time::{SimDuration, SimTime};
