//! Live run-health plane: a shared snapshot of the running harness plus a
//! std-only `/metrics` endpoint and a stall watchdog.
//!
//! ROADMAP item 5 asks for the existing Prometheus exposition to be
//! observable *while a study runs*, not just written to `--metrics-out`
//! afterwards. This module provides the three pieces:
//!
//! - [`LiveState`] — the shared snapshot. The experiment loop publishes a
//!   freshly rendered exposition after every completed cell
//!   ([`LiveState::publish_exposition`]), the sweep executor bumps
//!   cells-completed/total via the (near-free when uninstalled) hooks
//!   [`sweep_started`]/[`cell_finished`], and [`LiveState::render`]
//!   prepends run-health gauges: wall/phase clocks, cell progress,
//!   [`crate::exec`] speedup, and flight-recorder occupancy/trigger
//!   counters.
//! - [`MetricsServer`] — a single-threaded `TcpListener` loop serving
//!   `GET /metrics` in Prometheus text exposition format v0.0.4. No async
//!   runtime, no thread pool: one connection at a time is plenty for a
//!   scrape endpoint, and the render is a snapshot read, never a
//!   simulation touch — scrapes cannot perturb determinism.
//! - [`Watchdog`] — a wall-clock stall detector over the heartbeat
//!   counter the executor and experiment loop tick. When no progress
//!   lands for the configured timeout the process exits with code
//!   [`WATCHDOG_EXIT_CODE`] instead of hanging a CI job forever (the
//!   sim-time analogue, [`crate::telemetry::Event::WatchdogStall`], is
//!   emitted by the experiment loop itself and also fires the flight
//!   recorder).
//!
//! Everything here is wall-clock and intentionally *outside* the
//! determinism contract: the live endpoint describes the run, it never
//! participates in it.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::exec;
use crate::flight::FlightStats;

/// Exit code of a [`Watchdog`]-terminated process.
pub const WATCHDOG_EXIT_CODE: i32 = 3;

/// Fast-path guard: the executor hooks are one relaxed load when no
/// [`LiveState`] is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Monotonic progress heartbeat (sweep starts, finished cells, control
/// intervals). Ticks even without an installed [`LiveState`] so the
/// watchdog works standalone.
static HEARTBEAT: AtomicU64 = AtomicU64::new(0);

static INSTALLED: Mutex<Option<Arc<LiveState>>> = Mutex::new(None);

/// The shared run-health snapshot behind the live endpoint.
pub struct LiveState {
    started: Instant,
    phase: Mutex<(String, Instant)>,
    /// Executor counters at the start of the current phase, so the
    /// speedup gauge describes *this* study, not the whole process —
    /// `repro all` runs many studies in one invocation and a cumulative
    /// ratio would smear them together.
    phase_exec_base: Mutex<exec::ExecStats>,
    cells_done: AtomicU64,
    cells_total: AtomicU64,
    exposition: Mutex<String>,
    #[allow(clippy::type_complexity)]
    flight: Mutex<Option<Box<dyn Fn() -> FlightStats + Send>>>,
}

impl std::fmt::Debug for LiveState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveState")
            .field("cells_done", &self.cells_done.load(Ordering::Relaxed))
            .field("cells_total", &self.cells_total.load(Ordering::Relaxed))
            .finish()
    }
}

impl LiveState {
    fn new() -> Self {
        let now = Instant::now();
        LiveState {
            started: now,
            phase: Mutex::new((String::from("startup"), now)),
            phase_exec_base: Mutex::new(exec::stats()),
            cells_done: AtomicU64::new(0),
            cells_total: AtomicU64::new(0),
            exposition: Mutex::new(String::new()),
            flight: Mutex::new(None),
        }
    }

    /// Names the current phase (command, study, "profiling", …) and
    /// restarts the phase clock. Returns the previous phase name so
    /// nested phases (the profiler inside a study) can restore it.
    pub fn set_phase(&self, phase: &str) -> String {
        let mut guard = self.phase.lock().expect("live phase lock");
        let prev = std::mem::replace(&mut guard.0, phase.to_string());
        guard.1 = Instant::now();
        *self.phase_exec_base.lock().expect("live exec base lock") = exec::stats();
        prev
    }

    /// Replaces the published Prometheus exposition body (the
    /// domain-metrics part below the run-health gauges). Called by the
    /// experiment loop after each completed cell.
    pub fn publish_exposition(&self, text: String) {
        *self.exposition.lock().expect("live exposition lock") = text;
    }

    /// Wires a flight-recorder stats source into the run-health gauges.
    pub fn set_flight_source(&self, source: impl Fn() -> FlightStats + Send + 'static) {
        *self.flight.lock().expect("live flight lock") = Some(Box::new(source));
    }

    /// Renders the full exposition: run-health gauges first, then the
    /// last published domain metrics.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge(&mut out, "aum_up", "1 while the harness is running.", 1.0);
        gauge(
            &mut out,
            "aum_run_wall_seconds",
            "Wall-clock seconds since the harness started.",
            self.started.elapsed().as_secs_f64(),
        );
        {
            let phase = self.phase.lock().expect("live phase lock");
            gauge(
                &mut out,
                "aum_phase_seconds",
                "Wall-clock seconds in the current phase.",
                phase.1.elapsed().as_secs_f64(),
            );
            out.push_str("# HELP aum_phase_info Current phase as a label.\n");
            out.push_str("# TYPE aum_phase_info gauge\n");
            out.push_str(&format!(
                "aum_phase_info{{phase=\"{}\"}} 1\n",
                escape_label(&phase.0)
            ));
        }
        gauge(
            &mut out,
            "aum_sweep_cells_total",
            "Grid cells scheduled across all sweeps so far.",
            self.cells_total.load(Ordering::Relaxed) as f64,
        );
        gauge(
            &mut out,
            "aum_sweep_cells_completed",
            "Grid cells completed across all sweeps so far.",
            self.cells_done.load(Ordering::Relaxed) as f64,
        );
        let stats = exec::stats();
        gauge(
            &mut out,
            "aum_exec_busy_seconds",
            "Summed per-cell execution time (serial-equivalent work).",
            stats.busy.as_secs_f64(),
        );
        gauge(
            &mut out,
            "aum_exec_wall_seconds",
            "Summed sweep wall-clock time.",
            stats.wall.as_secs_f64(),
        );
        gauge(
            &mut out,
            "aum_exec_claim_seconds",
            "Summed worker time claiming cells from the sweep cursor.",
            stats.claim.as_secs_f64(),
        );
        gauge(
            &mut out,
            "aum_exec_merge_seconds",
            "Summed time merging per-cell traces into the parent tracer.",
            stats.merge.as_secs_f64(),
        );
        gauge(
            &mut out,
            "aum_exec_idle_seconds",
            "Summed pool-worker wall time not spent computing or claiming.",
            stats.idle.as_secs_f64(),
        );
        // Per-phase delta, not the process-cumulative ratio: one `repro
        // all` invocation runs many studies and the cumulative ratio
        // would average them together.
        let phase_delta = stats.since(&self.phase_exec_base.lock().expect("live exec base lock"));
        gauge(
            &mut out,
            "aum_exec_speedup",
            "Observed sweep speedup (busy over wall) of the current phase.",
            phase_delta.speedup(),
        );
        self.render_prof(&mut out);
        let flight = self.flight.lock().expect("live flight lock");
        if let Some(source) = flight.as_ref() {
            let fs = source();
            gauge(
                &mut out,
                "aum_flight_occupancy",
                "Records currently buffered in the flight-recorder ring.",
                fs.occupancy as f64,
            );
            gauge(
                &mut out,
                "aum_flight_capacity",
                "Flight-recorder ring retention limit.",
                fs.capacity as f64,
            );
            gauge(
                &mut out,
                "aum_flight_evicted_total",
                "Records evicted from the flight-recorder ring.",
                fs.evicted as f64,
            );
            gauge(
                &mut out,
                "aum_flight_triggers_total",
                "Flight-recorder trigger firings (including suppressed).",
                fs.triggers as f64,
            );
            gauge(
                &mut out,
                "aum_flight_incidents_total",
                "Incident files written by the flight recorder.",
                fs.incidents as f64,
            );
        }
        drop(flight);
        let exposition = self.exposition.lock().expect("live exposition lock");
        if !exposition.is_empty() {
            out.push('\n');
            out.push_str(&exposition);
        }
        out
    }

    /// Self-profiling gauges (`aum_selftime_*`, `aum_cache_*`), emitted
    /// only once the [`crate::prof`] plane has recorded something — the
    /// section is absent for runs that never enabled self-profiling.
    fn render_prof(&self, out: &mut String) {
        let snap = crate::prof::snapshot();
        if snap.nodes.is_empty() && snap.counters.is_empty() {
            return;
        }
        if !snap.nodes.is_empty() {
            out.push_str(
                "# HELP aum_selftime_seconds Host seconds inside a self-profiling scope \
                 (children included).\n# TYPE aum_selftime_seconds gauge\n",
            );
            for n in &snap.nodes {
                out.push_str(&format!(
                    "aum_selftime_seconds{{scope=\"{}\"}} {}\n",
                    escape_label(&n.path),
                    n.total_nanos as f64 / 1e9,
                ));
            }
            out.push_str(
                "# HELP aum_selftime_calls Times a self-profiling scope was entered.\n\
                 # TYPE aum_selftime_calls gauge\n",
            );
            for n in &snap.nodes {
                out.push_str(&format!(
                    "aum_selftime_calls{{scope=\"{}\"}} {}\n",
                    escape_label(&n.path),
                    n.calls,
                ));
            }
        }
        let lookups = snap.counter("model_cache.lookup");
        let builds = snap.counter("model_cache.build");
        if lookups > 0 || builds > 0 {
            let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
                out.push_str(&format!(
                    "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
                ));
            };
            gauge(
                out,
                "aum_cache_lookups_total",
                "ModelCache lookups observed by the self-profiling plane.",
                lookups as f64,
            );
            gauge(
                out,
                "aum_cache_builds_total",
                "ModelCache profiling sweeps actually executed.",
                builds as f64,
            );
            gauge(
                out,
                "aum_cache_hits_total",
                "ModelCache lookups served without building.",
                lookups.saturating_sub(builds) as f64,
            );
            gauge(
                out,
                "aum_cache_hit_rate",
                "Fraction of ModelCache lookups served from cache.",
                if lookups == 0 {
                    1.0
                } else {
                    lookups.saturating_sub(builds) as f64 / lookups as f64
                },
            );
            gauge(
                out,
                "aum_cache_cow_clones_total",
                "Copy-on-write AUV-model clones triggered by controller refinement.",
                snap.counter("model.cow_clone") as f64,
            );
        }
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Installs a fresh [`LiveState`] as the process-global snapshot the
/// executor hooks feed, returning it. Replaces any previous one.
pub fn install() -> Arc<LiveState> {
    let state = Arc::new(LiveState::new());
    *INSTALLED.lock().expect("live install lock") = Some(state.clone());
    ACTIVE.store(true, Ordering::Relaxed);
    state
}

/// The installed snapshot, if any.
#[must_use]
pub fn installed() -> Option<Arc<LiveState>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    INSTALLED.lock().expect("live install lock").clone()
}

/// Removes the installed snapshot (tests; also makes the hooks free
/// again).
pub fn uninstall() {
    ACTIVE.store(false, Ordering::Relaxed);
    *INSTALLED.lock().expect("live install lock") = None;
}

/// Executor hook: a sweep over `cells` cells is starting.
pub fn sweep_started(cells: usize) {
    HEARTBEAT.fetch_add(1, Ordering::Relaxed);
    if let Some(state) = installed() {
        state.cells_total.fetch_add(cells as u64, Ordering::Relaxed);
    }
}

/// Executor hook: one grid cell finished.
pub fn cell_finished() {
    HEARTBEAT.fetch_add(1, Ordering::Relaxed);
    if let Some(state) = installed() {
        state.cells_done.fetch_add(1, Ordering::Relaxed);
    }
}

/// Progress heartbeat for the [`Watchdog`]; the experiment loop ticks it
/// once per control interval so long-running single cells still count as
/// progress.
pub fn heartbeat() {
    HEARTBEAT.fetch_add(1, Ordering::Relaxed);
}

/// Current heartbeat counter value.
#[must_use]
pub fn heartbeats() -> u64 {
    HEARTBEAT.load(Ordering::Relaxed)
}

/// Wall-clock stall watchdog: terminates the process (exit code
/// [`WATCHDOG_EXIT_CODE`]) when the heartbeat counter stops moving for
/// `timeout`, so a stalled cell fails loudly instead of hanging a sweep.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Arms a watchdog with the given wall-clock timeout.
    #[must_use]
    pub fn arm(timeout: Duration) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let poll = (timeout / 8).clamp(Duration::from_millis(10), Duration::from_secs(1));
        let handle = std::thread::spawn(move || {
            let mut last = heartbeats();
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(poll);
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                let now = heartbeats();
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() >= timeout {
                    eprintln!(
                        "watchdog: no progress for {:.0}s — terminating (exit {})",
                        timeout.as_secs_f64(),
                        WATCHDOG_EXIT_CODE
                    );
                    std::process::exit(WATCHDOG_EXIT_CODE);
                }
            }
        });
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }

    /// Disarms the watchdog (joins its thread).
    pub fn disarm(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A single-threaded `/metrics` HTTP endpoint over [`LiveState`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9474`; port 0 picks a free one) and
    /// starts serving `state` on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve(addr: &str, state: Arc<LiveState>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = handle_conn(stream, &state);
                }
            }
        });
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves one connection: reads the request head, answers `/metrics`
/// (and `/`) with the rendered exposition, anything else with 404.
fn handle_conn(mut stream: TcpStream, state: &Arc<LiveState>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", state.render())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers install → hooks → render → HTTP round-trip →
    /// shutdown, serially, because the installed state is process-global.
    #[test]
    fn live_state_renders_and_serves_over_http() {
        let state = install();
        state.set_phase("unit-test");
        sweep_started(4);
        cell_finished();
        cell_finished();
        state.publish_exposition(String::from(
            "# TYPE aum_requests_finished counter\naum_requests_finished 5\n",
        ));
        state.set_flight_source(|| FlightStats {
            occupancy: 7,
            capacity: 64,
            evicted: 1,
            triggers: 2,
            incidents: 1,
        });
        let rendered = state.render();
        assert!(rendered.contains("aum_up 1"), "{rendered}");
        assert!(
            rendered.contains("aum_phase_info{phase=\"unit-test\"} 1"),
            "{rendered}"
        );
        assert!(rendered.contains("aum_sweep_cells_total 4"), "{rendered}");
        assert!(
            rendered.contains("aum_sweep_cells_completed 2"),
            "{rendered}"
        );
        assert!(rendered.contains("aum_flight_occupancy 7"), "{rendered}");
        assert!(rendered.contains("aum_requests_finished 5"), "{rendered}");

        let server = MetricsServer::serve("127.0.0.1:0", state.clone()).expect("bind");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("aum_up 1"), "{response}");
        assert!(
            response.contains("aum_flight_triggers_total 2"),
            "{response}"
        );

        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");

        server.shutdown();
        uninstall();
        assert!(installed().is_none());

        // A disarmed watchdog never fires.
        let dog = Watchdog::arm(Duration::from_secs(600));
        heartbeat();
        dog.disarm();
    }
}
