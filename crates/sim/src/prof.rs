//! Host-wall-clock self-profiling plane.
//!
//! Everything else in `aum-sim` measures **simulated** time; this module
//! measures the *simulator itself* — where host wall-clock goes while a
//! study runs (roofline cost evaluation? `ModelCache` misses? executor
//! idle? trace merging?). ROADMAP item 1 (event-driven core + cost
//! memoization) needs that answer before any rewrite, and `repro
//! perf-report` is built on this module.
//!
//! # Design
//!
//! * **Scoped timers.** [`scope("name")`](scope) returns a guard; the
//!   elapsed host time and one call are flushed into a global tree node
//!   keyed by `(parent, name)` when the guard drops — exactly two relaxed
//!   `fetch_add`s per scope exit. Nodes are resolved through a
//!   thread-local cache, so the global registry mutex is only touched the
//!   first time a thread sees a `(parent, name)` pair.
//! * **Off by default, near-zero disabled cost.** When disabled (the
//!   default), [`scope`] is a single relaxed atomic load returning an
//!   empty guard — no thread-local access, no clock read. The
//!   `telemetry_overhead` bench holds the disabled path to ≤ 1.05× of a
//!   no-timer baseline.
//! * **Deterministic tree shape.** The *shape* of the tree (node paths),
//!   call counts, and named [`count`]ers are functions of the simulated
//!   work only, so they are byte-identical at any `--jobs` level —
//!   [`Snapshot::render_deterministic`] renders exactly that subset and is
//!   what the determinism gates compare. Host *timings*
//!   ([`Snapshot::render_timing`], [`Snapshot::render_folded`]) are
//!   inherently nondeterministic and are excluded from identity checks.
//! * **Re-rooting across worker threads.** Worker threads start with an
//!   empty scope stack, which would make a parallel run's tree differ
//!   from a serial run's. The executor captures [`current_parent`] on the
//!   calling thread and wraps each cell in [`with_parent`], so cell-level
//!   scopes attach to the same node at `--jobs 1` and `--jobs 8`.
//!
//! # Clock domains
//!
//! Scoped-timer durations are [`Instant`] deltas (host monotonic clock)
//! and have no relation to [`crate::time::SimTime`]. A cheap simulated
//! minute and an expensive simulated minute look identical to sim-time
//! telemetry but completely different here — that contrast is the point.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Global enable gate. The disabled fast path of [`scope`] and [`count`]
/// is one relaxed load of this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables self-profiling process-wide.
///
/// Enabling is cheap; scopes created while disabled remain no-ops for
/// their whole lifetime (a guard never changes mode mid-flight).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether self-profiling is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sentinel node id for the implicit root of the self-time tree.
const ROOT: u32 = 0;

struct Node {
    id: u32,
    parent: u32,
    name: &'static str,
    calls: AtomicU64,
    nanos: AtomicU64,
}

struct Registry {
    nodes: Vec<Arc<Node>>,
    index: HashMap<(u32, &'static str), u32>,
    counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    /// Bumped by [`reset`]; thread-local caches holding node handles from
    /// an older epoch discard them on first use.
    epoch: u64,
}

impl Registry {
    fn new(epoch: u64) -> Self {
        let root = Arc::new(Node {
            id: ROOT,
            parent: ROOT,
            name: "",
            calls: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        });
        Registry {
            nodes: vec![root],
            index: HashMap::new(),
            counters: BTreeMap::new(),
            epoch,
        }
    }

    fn child(&mut self, parent: u32, name: &'static str) -> Arc<Node> {
        if let Some(&id) = self.index.get(&(parent, name)) {
            return Arc::clone(&self.nodes[id as usize]);
        }
        let id = u32::try_from(self.nodes.len()).expect("node table overflow");
        let node = Arc::new(Node {
            id,
            parent,
            name,
            calls: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        });
        self.nodes.push(Arc::clone(&node));
        self.index.insert((parent, name), id);
        node
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::new(0)))
}

struct TlState {
    epoch: u64,
    current: u32,
    nodes: HashMap<(u32, &'static str), Arc<Node>>,
    counters: HashMap<&'static str, Arc<AtomicU64>>,
}

thread_local! {
    static TL: RefCell<TlState> = RefCell::new(TlState {
        epoch: 0,
        current: ROOT,
        nodes: HashMap::new(),
        counters: HashMap::new(),
    });
}

/// Clears the whole self-time tree and every named counter, and detaches
/// all thread-local caches (they re-sync lazily via an epoch check).
///
/// Call this from a single-threaded control point — between studies, not
/// while scopes are live on other threads; a scope spanning a reset
/// flushes into the discarded tree and is simply lost.
pub fn reset() {
    let mut reg = registry().lock().expect("prof registry lock");
    let next = reg.epoch + 1;
    *reg = Registry::new(next);
}

fn sync_epoch(tl: &mut TlState, reg_epoch: u64) {
    if tl.epoch != reg_epoch {
        tl.epoch = reg_epoch;
        tl.current = ROOT;
        tl.nodes.clear();
        tl.counters.clear();
    }
}

fn resolve(parent: u32, name: &'static str) -> Arc<Node> {
    let mut reg = registry().lock().expect("prof registry lock");
    reg.child(parent, name)
}

/// RAII guard for one timed scope; see [`scope`].
pub struct Scope {
    inner: Option<ScopeInner>,
}

struct ScopeInner {
    node: Arc<Node>,
    prev: u32,
    t0: Instant,
    /// Registry epoch the scope opened under; a reset mid-scope must not
    /// let the drop clobber the fresh thread-local stack.
    epoch: u64,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dt = inner.t0.elapsed().as_nanos() as u64;
            inner.node.calls.fetch_add(1, Ordering::Relaxed);
            inner.node.nanos.fetch_add(dt, Ordering::Relaxed);
            TL.with(|tl| {
                let mut tl = tl.borrow_mut();
                if tl.epoch == inner.epoch {
                    tl.current = inner.prev;
                }
            });
        }
    }
}

/// Opens a named, timed scope under the current thread's innermost open
/// scope. Dropping the returned guard flushes `(1 call, elapsed nanos)`
/// into the `(parent, name)` tree node.
///
/// Names must be `'static` literals; the tree is keyed by pointer-free
/// `(parent id, name)` pairs, so dynamic strings are deliberately
/// unrepresentable (they would unbound the node table).
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !ENABLED.load(Ordering::Relaxed) {
        return Scope { inner: None };
    }
    Scope {
        inner: Some(enter(name)),
    }
}

fn enter(name: &'static str) -> ScopeInner {
    let reg_epoch = registry().lock().expect("prof registry lock").epoch;
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        sync_epoch(&mut tl, reg_epoch);
        let parent = tl.current;
        let node = if let Some(node) = tl.nodes.get(&(parent, name)) {
            Arc::clone(node)
        } else {
            let node = resolve(parent, name);
            tl.nodes.insert((parent, name), Arc::clone(&node));
            node
        };
        tl.current = node.id;
        ScopeInner {
            node,
            prev: parent,
            t0: Instant::now(),
            epoch: reg_epoch,
        }
    })
}

/// A capture of the calling thread's innermost open scope, used to
/// re-root work that migrates to another thread (see [`with_parent`]).
#[derive(Debug, Clone, Copy)]
pub struct ParentHandle {
    id: u32,
    epoch: u64,
}

/// Captures the calling thread's current scope as a [`ParentHandle`].
///
/// Cheap when disabled (returns a root handle without touching
/// thread-local state).
#[must_use]
pub fn current_parent() -> ParentHandle {
    if !ENABLED.load(Ordering::Relaxed) {
        return ParentHandle { id: ROOT, epoch: 0 };
    }
    let reg_epoch = registry().lock().expect("prof registry lock").epoch;
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        sync_epoch(&mut tl, reg_epoch);
        ParentHandle {
            id: tl.current,
            epoch: reg_epoch,
        }
    })
}

/// Runs `f` with the thread's scope stack rooted at `parent`, restoring
/// the previous root afterwards.
///
/// This is how the sweep executor keeps the self-time tree's *shape*
/// independent of the worker count: it captures [`current_parent`] on the
/// calling thread and wraps every cell in `with_parent`, so scopes opened
/// inside a cell attach to the same node whether the cell ran inline
/// (`--jobs 1`) or on a pool thread (`--jobs 8`).
pub fn with_parent<R>(parent: ParentHandle, f: impl FnOnce() -> R) -> R {
    if !ENABLED.load(Ordering::Relaxed) {
        return f();
    }
    let reg_epoch = registry().lock().expect("prof registry lock").epoch;
    if parent.epoch != reg_epoch {
        // A reset invalidated the handle; run unrooted rather than attach
        // to an arbitrary node of the new tree.
        return f();
    }
    let prev = TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        sync_epoch(&mut tl, reg_epoch);
        std::mem::replace(&mut tl.current, parent.id)
    });
    let out = f();
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        if tl.epoch == reg_epoch {
            tl.current = prev;
        }
    });
    out
}

/// Adds `delta` to the named global counter (no-op while disabled).
///
/// Counters carry deterministic event counts — `ModelCache` lookups and
/// builds, controller copy-on-write refinements — that the perf report
/// folds into its deterministic section and the live endpoint exports as
/// `aum_cache_*` gauges.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let reg_epoch = registry().lock().expect("prof registry lock").epoch;
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        sync_epoch(&mut tl, reg_epoch);
        if let Some(c) = tl.counters.get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let counter = {
            let mut reg = registry().lock().expect("prof registry lock");
            Arc::clone(
                reg.counters
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        };
        counter.fetch_add(delta, Ordering::Relaxed);
        tl.counters.insert(name, counter);
    });
}

/// One node of a [`Snapshot`] self-time tree, in DFS pre-order with
/// children sorted by name (registration order is racy under parallel
/// sweeps; the sort makes the rendered shape canonical).
#[derive(Debug, Clone)]
pub struct SnapshotNode {
    /// Scope name (the `'static` literal passed to [`scope`]).
    pub name: &'static str,
    /// `;`-joined path from the first real scope down to this node —
    /// exactly the stack syntax of collapsed-stack flamegraph lines.
    pub path: String,
    /// Nesting depth (top-level scopes are depth 0).
    pub depth: usize,
    /// Times this scope was entered.
    pub calls: u64,
    /// Total host nanoseconds spent inside this scope (children
    /// included).
    pub total_nanos: u64,
    /// Host nanoseconds attributable to this scope alone
    /// (`total − Σ children`, clamped at 0).
    pub self_nanos: u64,
}

/// A point-in-time copy of the self-time tree and counters. Cheap to
/// take; all rendering works off the copy.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Tree nodes in canonical (DFS, name-sorted) order.
    pub nodes: Vec<SnapshotNode>,
    /// Named counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

/// Takes a [`Snapshot`] of the current tree and counters.
#[must_use]
pub fn snapshot() -> Snapshot {
    struct Raw {
        parent: u32,
        name: &'static str,
        calls: u64,
        nanos: u64,
    }
    let (raws, counters) = {
        let reg = registry().lock().expect("prof registry lock");
        let raws: Vec<Raw> = reg
            .nodes
            .iter()
            .map(|n| Raw {
                parent: n.parent,
                name: n.name,
                calls: n.calls.load(Ordering::Relaxed),
                nanos: n.nanos.load(Ordering::Relaxed),
            })
            .collect();
        let counters: Vec<(&'static str, u64)> = reg
            .counters
            .iter()
            .map(|(name, c)| (*name, c.load(Ordering::Relaxed)))
            .collect();
        (raws, counters)
    };

    let mut children: Vec<Vec<u32>> = vec![Vec::new(); raws.len()];
    for (id, raw) in raws.iter().enumerate() {
        if id as u32 != ROOT {
            children[raw.parent as usize].push(id as u32);
        }
    }
    for kids in &mut children {
        kids.sort_by_key(|&id| raws[id as usize].name);
    }

    let mut nodes = Vec::with_capacity(raws.len().saturating_sub(1));
    let mut stack: Vec<(u32, usize, String)> = children[ROOT as usize]
        .iter()
        .rev()
        .map(|&id| (id, 0, String::new()))
        .collect();
    while let Some((id, depth, prefix)) = stack.pop() {
        let raw = &raws[id as usize];
        let path = if prefix.is_empty() {
            raw.name.to_string()
        } else {
            format!("{prefix};{}", raw.name)
        };
        let child_nanos: u64 = children[id as usize]
            .iter()
            .map(|&c| raws[c as usize].nanos)
            .sum();
        nodes.push(SnapshotNode {
            name: raw.name,
            path: path.clone(),
            depth,
            calls: raw.calls,
            total_nanos: raw.nanos,
            self_nanos: raw.nanos.saturating_sub(child_nanos),
        });
        for &c in children[id as usize].iter().rev() {
            stack.push((c, depth + 1, path.clone()));
        }
    }
    Snapshot { nodes, counters }
}

impl Snapshot {
    /// Sum of top-level (`depth == 0`) scope totals, in nanoseconds —
    /// the tree's account of the whole profiled region.
    #[must_use]
    pub fn top_level_nanos(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.depth == 0)
            .map(|n| n.total_nanos)
            .sum()
    }

    /// Looks up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Renders the **deterministic** subset: tree shape and call counts
    /// plus named counters. Byte-identical at any `--jobs` level for the
    /// same simulated work; never includes host timings.
    #[must_use]
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        out.push_str("self-time tree (shape and call counts):\n");
        for n in &self.nodes {
            out.push_str(&format!(
                "  {:indent$}{name}  calls={calls}\n",
                "",
                indent = n.depth * 2,
                name = n.name,
                calls = n.calls,
            ));
        }
        out.push_str("counters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("  {name} = {v}\n"));
        }
        out
    }

    /// Renders the **timing** section: per-node total/self host time and
    /// shares of the top-level total. Nondeterministic by nature —
    /// excluded from every identity gate.
    #[must_use]
    pub fn render_timing(&self) -> String {
        let top = self.top_level_nanos().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>10} {:>12} {:>12} {:>7}\n",
            "phase", "calls", "total_ms", "self_ms", "share"
        ));
        for n in &self.nodes {
            out.push_str(&format!(
                "{:<42} {:>10} {:>12.3} {:>12.3} {:>6.1}%\n",
                format!("{:indent$}{name}", "", indent = n.depth * 2, name = n.name),
                n.calls,
                n.total_nanos as f64 / 1e6,
                n.self_nanos as f64 / 1e6,
                100.0 * n.total_nanos as f64 / top as f64,
            ));
        }
        out
    }

    /// Renders collapsed-stack flamegraph lines (`a;b;c <weight>`, one
    /// per node with self-time, weight = self-time in microseconds) —
    /// the input format of `inferno-flamegraph` and speedscope.
    ///
    /// Nodes with calls but sub-microsecond self-time are emitted with
    /// weight 1 so every visited scope survives into the graph.
    #[must_use]
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            if n.calls == 0 {
                continue;
            }
            let micros = (n.self_nanos / 1_000).max(1);
            out.push_str(&format!("{} {micros}\n", n.path));
        }
        out
    }

    /// The top `k` nodes by self-time, as `(path, share_of_top_level)`
    /// pairs — the "top-5 phase shares" of `BENCH_<sha>.json`.
    #[must_use]
    pub fn top_self_phases(&self, k: usize) -> Vec<(String, f64)> {
        let top = self.top_level_nanos().max(1);
        let mut by_self: Vec<&SnapshotNode> = self.nodes.iter().filter(|n| n.calls > 0).collect();
        by_self.sort_by(|a, b| b.self_nanos.cmp(&a.self_nanos).then(a.path.cmp(&b.path)));
        by_self
            .into_iter()
            .take(k)
            .map(|n| (n.path.clone(), n.self_nanos as f64 / top as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and enable flag are process-global; serialize the
    /// tests that mutate them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let _g = lock();
        reset();
        set_enabled(false);
        {
            let _s = scope("never");
        }
        assert!(snapshot().nodes.is_empty());
    }

    #[test]
    fn nested_scopes_build_a_tree_with_self_time() {
        let _g = lock();
        reset();
        set_enabled(true);
        {
            let _a = scope("outer");
            for _ in 0..3 {
                let _b = scope("inner");
            }
        }
        set_enabled(false);
        let snap = snapshot();
        let paths: Vec<&str> = snap.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer;inner"]);
        assert_eq!(snap.nodes[0].calls, 1);
        assert_eq!(snap.nodes[1].calls, 3);
        assert!(snap.nodes[0].total_nanos >= snap.nodes[1].total_nanos);
        let folded = snap.render_folded();
        assert!(folded.contains("outer;inner "));
    }

    #[test]
    fn with_parent_reroots_worker_scopes() {
        let _g = lock();
        reset();
        set_enabled(true);
        {
            let _a = scope("sweep");
            let parent = current_parent();
            std::thread::scope(|s| {
                s.spawn(|| {
                    with_parent(parent, || {
                        let _c = scope("cell");
                    });
                });
            });
        }
        set_enabled(false);
        let snap = snapshot();
        let paths: Vec<&str> = snap.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["sweep", "sweep;cell"]);
    }

    #[test]
    fn counters_accumulate_and_render_deterministically() {
        let _g = lock();
        reset();
        set_enabled(true);
        count("cache.hit", 2);
        count("cache.hit", 1);
        count("cache.miss", 1);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter("cache.hit"), 3);
        assert_eq!(snap.counter("cache.miss"), 1);
        let det = snap.render_deterministic();
        assert!(det.contains("cache.hit = 3"));
        assert!(!det.contains("ms"), "no timings in deterministic section");
    }

    #[test]
    fn sibling_order_is_name_sorted_not_registration_order() {
        let _g = lock();
        reset();
        set_enabled(true);
        {
            let _z = scope("zeta");
        }
        {
            let _a = scope("alpha");
        }
        set_enabled(false);
        let names: Vec<&str> = snapshot().nodes.iter().map(|n| n.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn reset_clears_tree_and_counters() {
        let _g = lock();
        reset();
        set_enabled(true);
        {
            let _s = scope("gone");
        }
        count("gone.count", 5);
        reset();
        {
            let _s = scope("kept");
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.nodes.len(), 1);
        assert_eq!(snap.nodes[0].name, "kept");
        assert!(snap.counters.is_empty());
    }
}
