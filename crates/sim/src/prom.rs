//! Prometheus text-format (exposition format v0.0.4) rendering.
//!
//! `repro attrib <study> --metrics-out <file.prom>` writes the final
//! [`MetricsSnapshot`] plus the run's
//! attribution [`Ledger`] in the plain-text format
//! every Prometheus-compatible scraper understands, so external tooling
//! can ingest simulator runs without parsing our JSONL traces.
//!
//! Only the subset of the format we need is implemented: `# HELP` /
//! `# TYPE` headers, `counter`, `gauge` and `histogram` types, and
//! `{label="value"}` label sets. Metric names are sanitized to
//! `[a-zA-Z0-9_:]` (the registry's `"tpot_secs/p50"` becomes
//! `tpot_secs_p50`); label *values* are escaped per the exposition spec
//! (`\` → `\\`, `"` → `\"`, newline → `\n`).

use core::fmt::Write as _;

use crate::attrib::{Ledger, Region};
use crate::hist::LogHistogram;
use crate::telemetry::MetricsSnapshot;

/// Replaces every character outside Prometheus's metric-name alphabet
/// with `_`, and prefixes a `_` if the name starts with a digit.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Escapes a label *value* per the text-exposition spec: backslash,
/// double-quote and newline must be escaped inside `label="value"`; every
/// other byte passes through untouched.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a metrics snapshot: every counter as a `counter` metric, every
/// gauge as a `gauge`, plus `aum_snapshot_sim_seconds` marking when the
/// snapshot was taken.
#[must_use]
pub fn render_registry(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP aum_snapshot_sim_seconds Simulated time of this metrics snapshot."
    );
    let _ = writeln!(out, "# TYPE aum_snapshot_sim_seconds gauge");
    let _ = writeln!(
        out,
        "aum_snapshot_sim_seconds {}",
        fmt_f64(snapshot.at.as_secs_f64())
    );
    for (name, value) in snapshot.counters.iter() {
        let metric = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {metric} Counter `{name}` from the AUM metrics registry."
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in snapshot.gauges.iter() {
        let metric = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {metric} Gauge `{name}` from the AUM metrics registry."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", fmt_f64(*value));
    }
    out
}

/// Renders a family of per-node metrics snapshots as `node`-labeled
/// series: each registry metric renders as `aum_node_<name>` with one
/// `# HELP`/`# TYPE` header per family, followed by one
/// `{node="<label>"}` row per node that carries it, plus
/// `aum_node_snapshot_sim_seconds{node=...}` rows marking each
/// snapshot's time. Node labels come from config strings and are escaped
/// via [`escape_label_value`].
#[must_use]
pub fn render_node_registries(series: &[(String, &MetricsSnapshot)]) -> String {
    use std::collections::BTreeSet;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP aum_node_snapshot_sim_seconds Simulated time of each node's metrics snapshot."
    );
    let _ = writeln!(out, "# TYPE aum_node_snapshot_sim_seconds gauge");
    for (node, snapshot) in series {
        let _ = writeln!(
            out,
            "aum_node_snapshot_sim_seconds{{node=\"{}\"}} {}",
            escape_label_value(node),
            fmt_f64(snapshot.at.as_secs_f64())
        );
    }
    let counter_names: BTreeSet<&String> =
        series.iter().flat_map(|(_, s)| s.counters.keys()).collect();
    for name in counter_names {
        let metric = format!("aum_node_{}", sanitize_name(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Counter `{name}` from the per-node AUM metrics registries."
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        for (node, snapshot) in series {
            if let Some(value) = snapshot.counters.get(name.as_str()) {
                let _ = writeln!(
                    out,
                    "{metric}{{node=\"{}\"}} {value}",
                    escape_label_value(node)
                );
            }
        }
    }
    let gauge_names: BTreeSet<&String> = series.iter().flat_map(|(_, s)| s.gauges.keys()).collect();
    for name in gauge_names {
        let metric = format!("aum_node_{}", sanitize_name(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Gauge `{name}` from the per-node AUM metrics registries."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for (node, snapshot) in series {
            if let Some(value) = snapshot.gauges.get(name.as_str()) {
                let _ = writeln!(
                    out,
                    "{metric}{{node=\"{}\"}} {}",
                    escape_label_value(node),
                    fmt_f64(*value)
                );
            }
        }
    }
    out
}

/// Renders an attribution ledger as whole-run totals:
/// `aum_attrib_seconds_total{region,cause}` and
/// `aum_attrib_joules_total{region,cause}` rows for every non-zero cell,
/// plus `aum_attrib_wall_seconds` and `aum_attrib_energy_joules`
/// conservation targets.
#[must_use]
pub fn render_ledger(ledger: &Ledger) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP aum_attrib_wall_seconds Wall time covered by the attribution ledger."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_wall_seconds gauge");
    let _ = writeln!(
        out,
        "aum_attrib_wall_seconds {}",
        fmt_f64(ledger.wall_secs())
    );
    let _ = writeln!(
        out,
        "# HELP aum_attrib_energy_joules Modeled package energy covered by the attribution ledger."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_energy_joules gauge");
    let _ = writeln!(
        out,
        "aum_attrib_energy_joules {}",
        fmt_f64(ledger.energy_j())
    );

    let _ = writeln!(
        out,
        "# HELP aum_attrib_seconds_total Attributed seconds by region and cause."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_seconds_total counter");
    for region in Region::ALL {
        for (cause, secs) in ledger.region_time(region).iter() {
            if secs != 0.0 {
                let _ = writeln!(
                    out,
                    "aum_attrib_seconds_total{{region=\"{}\",cause=\"{}\"}} {}",
                    escape_label_value(region.label()),
                    escape_label_value(cause.label()),
                    fmt_f64(secs)
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "# HELP aum_attrib_joules_total Attributed joules by region and cause."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_joules_total counter");
    for region in Region::ALL {
        for (cause, joules) in ledger.region_energy(region).iter() {
            if joules != 0.0 {
                let _ = writeln!(
                    out,
                    "aum_attrib_joules_total{{region=\"{}\",cause=\"{}\"}} {}",
                    escape_label_value(region.label()),
                    escape_label_value(cause.label()),
                    fmt_f64(joules)
                );
            }
        }
    }
    out
}

/// Renders a [`LogHistogram`] as a Prometheus `histogram`: cumulative
/// `<name>_bucket{le="..."}` rows at each occupied bucket's upper bound
/// (plus the mandatory `le="+Inf"`), then `<name>_sum` and `<name>_count`.
///
/// `labels` are attached to every row; values are escaped via
/// [`escape_label_value`]. Only occupied buckets emit a row — with fixed
/// log-linear boundaries the cumulative reading is unaffected and the
/// exposition stays proportional to occupancy, not the 4096-bucket grid.
#[must_use]
pub fn render_histogram(
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    h: &LogHistogram,
) -> String {
    let metric = sanitize_name(name);
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    // Label set with `le` appended, and without (for _sum/_count).
    let with_le = |le: &str| {
        let mut parts = rendered.clone();
        parts.push(format!("le=\"{le}\""));
        format!("{{{}}}", parts.join(","))
    };
    let bare = if rendered.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", rendered.join(","))
    };
    let mut out = String::new();
    let _ = writeln!(out, "# HELP {metric} {help}");
    let _ = writeln!(out, "# TYPE {metric} histogram");
    let mut cumulative = h.underflow();
    if cumulative > 0 {
        let le = with_le(&fmt_f64(crate::hist::min_value()));
        let _ = writeln!(out, "{metric}_bucket{le} {cumulative}");
    }
    for (idx, count) in h.nonzero_buckets() {
        cumulative += count;
        let (_, hi) = LogHistogram::bucket_bounds(idx);
        let le = with_le(&fmt_f64(hi));
        let _ = writeln!(out, "{metric}_bucket{le} {cumulative}");
    }
    let le = with_le("+Inf");
    let _ = writeln!(out, "{metric}_bucket{le} {}", h.count());
    let _ = writeln!(out, "{metric}_sum{bare} {}", fmt_f64(h.sum()));
    let _ = writeln!(out, "{metric}_count{bare} {}", h.count());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::{IntervalLedger, RegionSample, WorkFractions};
    use crate::time::SimTime;

    #[test]
    fn sanitize_maps_slashes_and_leading_digits() {
        assert_eq!(sanitize_name("tpot_secs/p50"), "tpot_secs_p50");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        // A pathological value exercising every escape the exposition
        // format requires, plus characters that must pass through.
        let pathological = "C:\\temp\\\"quoted\"\nnext λ";
        assert_eq!(
            escape_label_value(pathological),
            "C:\\\\temp\\\\\\\"quoted\\\"\\nnext λ"
        );
        assert_eq!(escape_label_value("plain"), "plain");
        // Escaped output never contains a raw quote or newline that would
        // terminate the label value early.
        let escaped = escape_label_value(pathological);
        assert!(!escaped.contains('\n'));
        let mut chars = escaped.chars().peekable();
        let mut prev_backslash = false;
        for ch in &mut chars {
            if ch == '"' {
                assert!(prev_backslash, "unescaped quote in {escaped:?}");
            }
            prev_backslash = ch == '\\' && !prev_backslash;
        }
    }

    #[test]
    fn histogram_rendering_is_cumulative_with_sum_and_count() {
        let h: LogHistogram = [0.01, 0.01, 0.5, 3.0, 1e-9].iter().copied().collect();
        let text = render_histogram(
            "aum_ttft_seconds",
            "TTFT distribution.",
            &[("scheme", "aum"), ("odd", "a\"b\nc\\d")],
            &h,
        );
        assert!(text.contains("# TYPE aum_ttft_seconds histogram"));
        // Escaped label value appears on every row.
        assert!(text.contains("odd=\"a\\\"b\\nc\\\\d\""));
        // Cumulative counts end at the total on +Inf.
        assert!(text.contains("le=\"+Inf\"}} 5") || text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("aum_ttft_seconds_count{scheme=\"aum\",odd="));
        assert!(text.contains("aum_ttft_seconds_sum{"));
        // Cumulative monotonicity across the _bucket rows.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket row: {line}");
            last = v;
        }
        assert_eq!(last, 5);

        // Unlabelled histograms omit the empty brace set on _sum/_count.
        let bare = render_histogram("x", "h", &[], &h);
        assert!(bare.contains("\nx_sum "));
        assert!(bare.contains("\nx_count 5"));
    }

    #[test]
    fn registry_rendering_has_headers_and_rows() {
        let mut registry = crate::telemetry::MetricsRegistry::new();
        registry.counter_add("decisions", 3);
        registry.gauge_set("tpot_secs/p50", 0.031);
        let snap = registry.snapshot(SimTime::from_secs(2));
        let text = render_registry(snap);
        assert!(text.contains("# TYPE decisions counter"));
        assert!(text.contains("decisions 3"));
        assert!(text.contains("# TYPE tpot_secs_p50 gauge"));
        assert!(text.contains("tpot_secs_p50 0.031"));
        assert!(text.contains("aum_snapshot_sim_seconds 2"));
    }

    #[test]
    fn node_registries_render_labeled_series_under_shared_headers() {
        let mut a = crate::telemetry::MetricsRegistry::new();
        a.counter_add("completed", 10);
        a.counter_add("redispatched", 2);
        a.gauge_set("health_factor", 1.0);
        let mut b = crate::telemetry::MetricsRegistry::new();
        b.counter_add("completed", 7);
        let snap_a = a.snapshot(SimTime::from_secs(3)).clone();
        let snap_b = b.snapshot(SimTime::from_secs(3)).clone();
        let text = render_node_registries(&[
            ("node0/GenA".to_string(), &snap_a),
            ("node1/GenB".to_string(), &snap_b),
        ]);
        assert!(text.contains("aum_node_completed{node=\"node0/GenA\"} 10"));
        assert!(text.contains("aum_node_completed{node=\"node1/GenB\"} 7"));
        assert!(text.contains("aum_node_redispatched{node=\"node0/GenA\"} 2"));
        // A metric absent on a node emits no row rather than a zero.
        assert!(!text.contains("aum_node_redispatched{node=\"node1/GenB\"}"));
        assert!(text.contains("aum_node_health_factor{node=\"node0/GenA\"} 1"));
        // Shared headers: exactly one TYPE line per metric family.
        let type_lines = text
            .lines()
            .filter(|l| *l == "# TYPE aum_node_completed counter")
            .count();
        assert_eq!(type_lines, 1);
        assert!(text.contains("aum_node_snapshot_sim_seconds{node=\"node0/GenA\"} 3"));
    }

    #[test]
    fn node_labels_from_config_strings_are_escaped() {
        // Node labels come from config strings, so the registry renderer
        // must survive the same pathological values the histogram path
        // already escapes: `"`, `\`, and newlines.
        let mut reg = crate::telemetry::MetricsRegistry::new();
        reg.counter_add("completed", 1);
        reg.gauge_set("health_factor", 0.5);
        let snap = reg.snapshot(SimTime::from_secs(1)).clone();
        let hostile = "node\"0\\weird\nname";
        let text = render_node_registries(&[(hostile.to_string(), &snap)]);
        // The raw hostile bytes never appear unescaped.
        assert!(!text.contains(hostile));
        assert!(text.contains("aum_node_completed{node=\"node\\\"0\\\\weird\\nname\"} 1"));
        assert!(text.contains("aum_node_health_factor{node=\"node\\\"0\\\\weird\\nname\"} 0.5"));
        // No sample line is split by a raw newline from the label value:
        // every non-comment line ends in a value that parses as a number.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "line broken by unescaped label: {line:?}"
            );
        }
    }

    #[test]
    fn ledger_rendering_labels_regions_and_causes() {
        let sample = RegionSample {
            region: crate::attrib::Region::AuHigh,
            busy_frac: 1.0,
            freq_ghz: 3.2,
            unlicensed_ghz: 3.2,
            thermal_drop_ghz: 0.0,
            work: WorkFractions {
                compute: 0.5,
                dram: 0.5,
                ..Default::default()
            },
            static_j: 5.0,
            dynamic_j: 15.0,
            shed: false,
        };
        let ledger = Ledger {
            intervals: vec![IntervalLedger::build(SimTime::ZERO, 1.0, 20.0, &[sample])],
        };
        let text = render_ledger(&ledger);
        assert!(text.contains("aum_attrib_seconds_total{region=\"au-high\",cause=\"compute\"} 0.5"));
        assert!(
            text.contains("aum_attrib_seconds_total{region=\"au-high\",cause=\"mem-dram\"} 0.5")
        );
        assert!(text.contains("aum_attrib_joules_total{region=\"au-high\",cause=\"compute\"}"));
        assert!(text.contains("aum_attrib_wall_seconds 1"));
        assert!(text.contains("aum_attrib_energy_joules 20"));
        // zero cells are suppressed
        assert!(!text.contains("cause=\"safe-mode-shed\""));
    }
}
