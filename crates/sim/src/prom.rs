//! Prometheus text-format (exposition format v0.0.4) rendering.
//!
//! `repro attrib <study> --metrics-out <file.prom>` writes the final
//! [`MetricsSnapshot`](crate::telemetry::MetricsSnapshot) plus the run's
//! attribution [`Ledger`](crate::attrib::Ledger) in the plain-text format
//! every Prometheus-compatible scraper understands, so external tooling
//! can ingest simulator runs without parsing our JSONL traces.
//!
//! Only the subset of the format we need is implemented: `# HELP` /
//! `# TYPE` headers, `counter`, `gauge` and `histogram` types, and
//! `{label="value"}` label sets. Metric names are sanitized to
//! `[a-zA-Z0-9_:]` (the registry's `"tpot_secs/p50"` becomes
//! `tpot_secs_p50`); label *values* are escaped per the exposition spec
//! (`\` → `\\`, `"` → `\"`, newline → `\n`).

use core::fmt::Write as _;

use crate::attrib::{Ledger, Region};
use crate::hist::LogHistogram;
use crate::telemetry::MetricsSnapshot;

/// Replaces every character outside Prometheus's metric-name alphabet
/// with `_`, and prefixes a `_` if the name starts with a digit.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Escapes a label *value* per the text-exposition spec: backslash,
/// double-quote and newline must be escaped inside `label="value"`; every
/// other byte passes through untouched.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a metrics snapshot: every counter as a `counter` metric, every
/// gauge as a `gauge`, plus `aum_snapshot_sim_seconds` marking when the
/// snapshot was taken.
#[must_use]
pub fn render_registry(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP aum_snapshot_sim_seconds Simulated time of this metrics snapshot."
    );
    let _ = writeln!(out, "# TYPE aum_snapshot_sim_seconds gauge");
    let _ = writeln!(
        out,
        "aum_snapshot_sim_seconds {}",
        fmt_f64(snapshot.at.as_secs_f64())
    );
    for (name, value) in snapshot.counters.iter() {
        let metric = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {metric} Counter `{name}` from the AUM metrics registry."
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in snapshot.gauges.iter() {
        let metric = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {metric} Gauge `{name}` from the AUM metrics registry."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", fmt_f64(*value));
    }
    out
}

/// Renders an attribution ledger as whole-run totals:
/// `aum_attrib_seconds_total{region,cause}` and
/// `aum_attrib_joules_total{region,cause}` rows for every non-zero cell,
/// plus `aum_attrib_wall_seconds` and `aum_attrib_energy_joules`
/// conservation targets.
#[must_use]
pub fn render_ledger(ledger: &Ledger) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP aum_attrib_wall_seconds Wall time covered by the attribution ledger."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_wall_seconds gauge");
    let _ = writeln!(
        out,
        "aum_attrib_wall_seconds {}",
        fmt_f64(ledger.wall_secs())
    );
    let _ = writeln!(
        out,
        "# HELP aum_attrib_energy_joules Modeled package energy covered by the attribution ledger."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_energy_joules gauge");
    let _ = writeln!(
        out,
        "aum_attrib_energy_joules {}",
        fmt_f64(ledger.energy_j())
    );

    let _ = writeln!(
        out,
        "# HELP aum_attrib_seconds_total Attributed seconds by region and cause."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_seconds_total counter");
    for region in Region::ALL {
        for (cause, secs) in ledger.region_time(region).iter() {
            if secs != 0.0 {
                let _ = writeln!(
                    out,
                    "aum_attrib_seconds_total{{region=\"{}\",cause=\"{}\"}} {}",
                    escape_label_value(region.label()),
                    escape_label_value(cause.label()),
                    fmt_f64(secs)
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "# HELP aum_attrib_joules_total Attributed joules by region and cause."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_joules_total counter");
    for region in Region::ALL {
        for (cause, joules) in ledger.region_energy(region).iter() {
            if joules != 0.0 {
                let _ = writeln!(
                    out,
                    "aum_attrib_joules_total{{region=\"{}\",cause=\"{}\"}} {}",
                    escape_label_value(region.label()),
                    escape_label_value(cause.label()),
                    fmt_f64(joules)
                );
            }
        }
    }
    out
}

/// Renders a [`LogHistogram`] as a Prometheus `histogram`: cumulative
/// `<name>_bucket{le="..."}` rows at each occupied bucket's upper bound
/// (plus the mandatory `le="+Inf"`), then `<name>_sum` and `<name>_count`.
///
/// `labels` are attached to every row; values are escaped via
/// [`escape_label_value`]. Only occupied buckets emit a row — with fixed
/// log-linear boundaries the cumulative reading is unaffected and the
/// exposition stays proportional to occupancy, not the 4096-bucket grid.
#[must_use]
pub fn render_histogram(
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    h: &LogHistogram,
) -> String {
    let metric = sanitize_name(name);
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    // Label set with `le` appended, and without (for _sum/_count).
    let with_le = |le: &str| {
        let mut parts = rendered.clone();
        parts.push(format!("le=\"{le}\""));
        format!("{{{}}}", parts.join(","))
    };
    let bare = if rendered.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", rendered.join(","))
    };
    let mut out = String::new();
    let _ = writeln!(out, "# HELP {metric} {help}");
    let _ = writeln!(out, "# TYPE {metric} histogram");
    let mut cumulative = h.underflow();
    if cumulative > 0 {
        let le = with_le(&fmt_f64(crate::hist::min_value()));
        let _ = writeln!(out, "{metric}_bucket{le} {cumulative}");
    }
    for (idx, count) in h.nonzero_buckets() {
        cumulative += count;
        let (_, hi) = LogHistogram::bucket_bounds(idx);
        let le = with_le(&fmt_f64(hi));
        let _ = writeln!(out, "{metric}_bucket{le} {cumulative}");
    }
    let le = with_le("+Inf");
    let _ = writeln!(out, "{metric}_bucket{le} {}", h.count());
    let _ = writeln!(out, "{metric}_sum{bare} {}", fmt_f64(h.sum()));
    let _ = writeln!(out, "{metric}_count{bare} {}", h.count());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::{IntervalLedger, RegionSample, WorkFractions};
    use crate::time::SimTime;

    #[test]
    fn sanitize_maps_slashes_and_leading_digits() {
        assert_eq!(sanitize_name("tpot_secs/p50"), "tpot_secs_p50");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        // A pathological value exercising every escape the exposition
        // format requires, plus characters that must pass through.
        let pathological = "C:\\temp\\\"quoted\"\nnext λ";
        assert_eq!(
            escape_label_value(pathological),
            "C:\\\\temp\\\\\\\"quoted\\\"\\nnext λ"
        );
        assert_eq!(escape_label_value("plain"), "plain");
        // Escaped output never contains a raw quote or newline that would
        // terminate the label value early.
        let escaped = escape_label_value(pathological);
        assert!(!escaped.contains('\n'));
        let mut chars = escaped.chars().peekable();
        let mut prev_backslash = false;
        for ch in &mut chars {
            if ch == '"' {
                assert!(prev_backslash, "unescaped quote in {escaped:?}");
            }
            prev_backslash = ch == '\\' && !prev_backslash;
        }
    }

    #[test]
    fn histogram_rendering_is_cumulative_with_sum_and_count() {
        let h: LogHistogram = [0.01, 0.01, 0.5, 3.0, 1e-9].iter().copied().collect();
        let text = render_histogram(
            "aum_ttft_seconds",
            "TTFT distribution.",
            &[("scheme", "aum"), ("odd", "a\"b\nc\\d")],
            &h,
        );
        assert!(text.contains("# TYPE aum_ttft_seconds histogram"));
        // Escaped label value appears on every row.
        assert!(text.contains("odd=\"a\\\"b\\nc\\\\d\""));
        // Cumulative counts end at the total on +Inf.
        assert!(text.contains("le=\"+Inf\"}} 5") || text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("aum_ttft_seconds_count{scheme=\"aum\",odd="));
        assert!(text.contains("aum_ttft_seconds_sum{"));
        // Cumulative monotonicity across the _bucket rows.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket row: {line}");
            last = v;
        }
        assert_eq!(last, 5);

        // Unlabelled histograms omit the empty brace set on _sum/_count.
        let bare = render_histogram("x", "h", &[], &h);
        assert!(bare.contains("\nx_sum "));
        assert!(bare.contains("\nx_count 5"));
    }

    #[test]
    fn registry_rendering_has_headers_and_rows() {
        let mut registry = crate::telemetry::MetricsRegistry::new();
        registry.counter_add("decisions", 3);
        registry.gauge_set("tpot_secs/p50", 0.031);
        let snap = registry.snapshot(SimTime::from_secs(2));
        let text = render_registry(snap);
        assert!(text.contains("# TYPE decisions counter"));
        assert!(text.contains("decisions 3"));
        assert!(text.contains("# TYPE tpot_secs_p50 gauge"));
        assert!(text.contains("tpot_secs_p50 0.031"));
        assert!(text.contains("aum_snapshot_sim_seconds 2"));
    }

    #[test]
    fn ledger_rendering_labels_regions_and_causes() {
        let sample = RegionSample {
            region: crate::attrib::Region::AuHigh,
            busy_frac: 1.0,
            freq_ghz: 3.2,
            unlicensed_ghz: 3.2,
            thermal_drop_ghz: 0.0,
            work: WorkFractions {
                compute: 0.5,
                dram: 0.5,
                ..Default::default()
            },
            static_j: 5.0,
            dynamic_j: 15.0,
            shed: false,
        };
        let ledger = Ledger {
            intervals: vec![IntervalLedger::build(SimTime::ZERO, 1.0, 20.0, &[sample])],
        };
        let text = render_ledger(&ledger);
        assert!(text.contains("aum_attrib_seconds_total{region=\"au-high\",cause=\"compute\"} 0.5"));
        assert!(
            text.contains("aum_attrib_seconds_total{region=\"au-high\",cause=\"mem-dram\"} 0.5")
        );
        assert!(text.contains("aum_attrib_joules_total{region=\"au-high\",cause=\"compute\"}"));
        assert!(text.contains("aum_attrib_wall_seconds 1"));
        assert!(text.contains("aum_attrib_energy_joules 20"));
        // zero cells are suppressed
        assert!(!text.contains("cause=\"safe-mode-shed\""));
    }
}
