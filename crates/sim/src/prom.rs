//! Prometheus text-format (exposition format v0.0.4) rendering.
//!
//! `repro attrib <study> --metrics-out <file.prom>` writes the final
//! [`MetricsSnapshot`](crate::telemetry::MetricsSnapshot) plus the run's
//! attribution [`Ledger`](crate::attrib::Ledger) in the plain-text format
//! every Prometheus-compatible scraper understands, so external tooling
//! can ingest simulator runs without parsing our JSONL traces.
//!
//! Only the subset of the format we need is implemented: `# HELP` /
//! `# TYPE` headers, `counter` and `gauge` types, and `{label="value"}`
//! label sets. Metric names are sanitized to `[a-zA-Z0-9_:]` (the
//! registry's `"tpot_secs/p50"` becomes `tpot_secs_p50`).

use core::fmt::Write as _;

use crate::attrib::{Ledger, Region};
use crate::telemetry::MetricsSnapshot;

/// Replaces every character outside Prometheus's metric-name alphabet
/// with `_`, and prefixes a `_` if the name starts with a digit.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a metrics snapshot: every counter as a `counter` metric, every
/// gauge as a `gauge`, plus `aum_snapshot_sim_seconds` marking when the
/// snapshot was taken.
#[must_use]
pub fn render_registry(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP aum_snapshot_sim_seconds Simulated time of this metrics snapshot."
    );
    let _ = writeln!(out, "# TYPE aum_snapshot_sim_seconds gauge");
    let _ = writeln!(
        out,
        "aum_snapshot_sim_seconds {}",
        fmt_f64(snapshot.at.as_secs_f64())
    );
    for (name, value) in snapshot.counters.iter() {
        let metric = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {metric} Counter `{name}` from the AUM metrics registry."
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in snapshot.gauges.iter() {
        let metric = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {metric} Gauge `{name}` from the AUM metrics registry."
        );
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", fmt_f64(*value));
    }
    out
}

/// Renders an attribution ledger as whole-run totals:
/// `aum_attrib_seconds_total{region,cause}` and
/// `aum_attrib_joules_total{region,cause}` rows for every non-zero cell,
/// plus `aum_attrib_wall_seconds` and `aum_attrib_energy_joules`
/// conservation targets.
#[must_use]
pub fn render_ledger(ledger: &Ledger) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP aum_attrib_wall_seconds Wall time covered by the attribution ledger."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_wall_seconds gauge");
    let _ = writeln!(
        out,
        "aum_attrib_wall_seconds {}",
        fmt_f64(ledger.wall_secs())
    );
    let _ = writeln!(
        out,
        "# HELP aum_attrib_energy_joules Modeled package energy covered by the attribution ledger."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_energy_joules gauge");
    let _ = writeln!(
        out,
        "aum_attrib_energy_joules {}",
        fmt_f64(ledger.energy_j())
    );

    let _ = writeln!(
        out,
        "# HELP aum_attrib_seconds_total Attributed seconds by region and cause."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_seconds_total counter");
    for region in Region::ALL {
        for (cause, secs) in ledger.region_time(region).iter() {
            if secs != 0.0 {
                let _ = writeln!(
                    out,
                    "aum_attrib_seconds_total{{region=\"{}\",cause=\"{}\"}} {}",
                    region.label(),
                    cause.label(),
                    fmt_f64(secs)
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "# HELP aum_attrib_joules_total Attributed joules by region and cause."
    );
    let _ = writeln!(out, "# TYPE aum_attrib_joules_total counter");
    for region in Region::ALL {
        for (cause, joules) in ledger.region_energy(region).iter() {
            if joules != 0.0 {
                let _ = writeln!(
                    out,
                    "aum_attrib_joules_total{{region=\"{}\",cause=\"{}\"}} {}",
                    region.label(),
                    cause.label(),
                    fmt_f64(joules)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::{IntervalLedger, RegionSample, WorkFractions};
    use crate::time::SimTime;

    #[test]
    fn sanitize_maps_slashes_and_leading_digits() {
        assert_eq!(sanitize_name("tpot_secs/p50"), "tpot_secs_p50");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn registry_rendering_has_headers_and_rows() {
        let mut registry = crate::telemetry::MetricsRegistry::new();
        registry.counter_add("decisions", 3);
        registry.gauge_set("tpot_secs/p50", 0.031);
        let snap = registry.snapshot(SimTime::from_secs(2));
        let text = render_registry(snap);
        assert!(text.contains("# TYPE decisions counter"));
        assert!(text.contains("decisions 3"));
        assert!(text.contains("# TYPE tpot_secs_p50 gauge"));
        assert!(text.contains("tpot_secs_p50 0.031"));
        assert!(text.contains("aum_snapshot_sim_seconds 2"));
    }

    #[test]
    fn ledger_rendering_labels_regions_and_causes() {
        let sample = RegionSample {
            region: crate::attrib::Region::AuHigh,
            busy_frac: 1.0,
            freq_ghz: 3.2,
            unlicensed_ghz: 3.2,
            thermal_drop_ghz: 0.0,
            work: WorkFractions {
                compute: 0.5,
                dram: 0.5,
                ..Default::default()
            },
            static_j: 5.0,
            dynamic_j: 15.0,
            shed: false,
        };
        let ledger = Ledger {
            intervals: vec![IntervalLedger::build(SimTime::ZERO, 1.0, 20.0, &[sample])],
        };
        let text = render_ledger(&ledger);
        assert!(text.contains("aum_attrib_seconds_total{region=\"au-high\",cause=\"compute\"} 0.5"));
        assert!(
            text.contains("aum_attrib_seconds_total{region=\"au-high\",cause=\"mem-dram\"} 0.5")
        );
        assert!(text.contains("aum_attrib_joules_total{region=\"au-high\",cause=\"compute\"}"));
        assert!(text.contains("aum_attrib_wall_seconds 1"));
        assert!(text.contains("aum_attrib_energy_joules 20"));
        // zero cells are suppressed
        assert!(!text.contains("cause=\"safe-mode-shed\""));
    }
}
