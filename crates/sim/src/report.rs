//! Plain-text report tables.
//!
//! The `repro` harness prints each paper table/figure as an aligned text
//! table; this module keeps the formatting in one place.

use std::fmt::Write as _;

/// A simple column-aligned text table builder.
///
/// # Examples
///
/// ```
/// use aum_sim::report::TextTable;
///
/// let mut t = TextTable::new(["scheme", "efficiency"]);
/// t.row(["ALL-AU", "1.000"]);
/// t.row(["AUM", "1.088"]);
/// let rendered = t.render();
/// assert!(rendered.contains("AUM"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column alignment and a separator line.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a float with 3 decimal places — the house style for normalized
/// metrics in repro output.
#[must_use]
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage with one decimal.
#[must_use]
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long_header"]);
        t.row(["xxxx", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.0881), "8.8%");
    }
}
