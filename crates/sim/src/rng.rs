//! Deterministic random-number streams.
//!
//! Every stochastic component of the reproduction (request arrivals, length
//! sampling, interference jitter) draws from a [`DetRng`] derived from a
//! single experiment seed. Sub-streams are derived by hashing a textual
//! label, so adding a new consumer never perturbs the draws seen by existing
//! ones — a property the determinism integration tests rely on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labelled deterministic random stream.
///
/// # Examples
///
/// ```
/// use aum_sim::rng::DetRng;
///
/// let mut a = DetRng::from_seed(7).stream("arrivals");
/// let mut b = DetRng::from_seed(7).stream("arrivals");
/// assert_eq!(a.next_f64(), b.next_f64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

/// 64-bit FNV-1a, used to fold stream labels into the seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl DetRng {
    /// Creates the root stream for an experiment seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives an independent sub-stream identified by `label`.
    ///
    /// Derivation depends only on the root seed and the label, not on how
    /// many values have been drawn from `self`.
    #[must_use]
    pub fn stream(&self, label: &str) -> DetRng {
        let sub = self.seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        DetRng::from_seed(sub)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_index requires n > 0");
        self.inner.gen_range(0..n)
    }

    /// Exponentially distributed draw with the given mean (inter-arrival
    /// sampling for Poisson processes).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal draw via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw parameterized directly by the desired mean and
    /// coefficient of variation of the *output* distribution. Used for
    /// request length sampling where the paper reports only trace means.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive, got {mean}");
        assert!(cv >= 0.0, "lognormal cv must be non-negative, got {cv}");
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        let z = self.normal(0.0, 1.0);
        (mu + sigma2.sqrt() * z).exp()
    }

    /// Bernoulli draw.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::from_seed(123);
        let mut b = DetRng::from_seed(123);
        for _ in 0..64 {
            assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
        }
    }

    #[test]
    fn different_labels_differ() {
        let root = DetRng::from_seed(9);
        let mut x = root.stream("x");
        let mut y = root.stream("y");
        let same = (0..16).filter(|_| x.next_f64() == y.next_f64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn stream_derivation_ignores_consumption() {
        let mut root = DetRng::from_seed(42);
        let before = root.stream("sub");
        let _ = root.next_f64();
        let mut after = root.stream("sub");
        let mut before = before;
        assert_eq!(before.next_f64().to_bits(), after.next_f64().to_bits());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::from_seed(5);
        let n = 50_000;
        let mean = 4.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = total / f64::from(n);
        assert!((observed - mean).abs() < 0.1, "observed mean {observed}");
    }

    #[test]
    fn lognormal_matches_requested_mean() {
        let mut r = DetRng::from_seed(6);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.lognormal_mean_cv(755.0, 0.8)).sum();
        let observed = total / f64::from(n);
        assert!(
            (observed - 755.0).abs() / 755.0 < 0.05,
            "observed mean {observed} should be within 5% of 755"
        );
    }

    #[test]
    fn lognormal_zero_cv_is_degenerate() {
        let mut r = DetRng::from_seed(1);
        assert_eq!(r.lognormal_mean_cv(200.0, 0.0), 200.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::from_seed(2);
        for _ in 0..1000 {
            let v = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn exponential_rejects_bad_mean() {
        DetRng::from_seed(0).exponential(0.0);
    }
}
