//! Time-series recording for telemetry (frequency traces, allocation
//! decisions over time, power draw).

use serde::{Deserialize, Serialize};

use crate::stats::Summary;
use crate::time::SimTime;

/// An append-only `(time, value)` series with monotonically non-decreasing
/// timestamps.
///
/// # Examples
///
/// ```
/// use aum_sim::series::TimeSeries;
/// use aum_sim::time::SimTime;
///
/// let mut ts = TimeSeries::new("freq_ghz");
/// ts.push(SimTime::from_millis(0), 3.2);
/// ts.push(SimTime::from_millis(10), 2.5);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last_value(), Some(2.5));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Series name, used in reports.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded timestamp.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(
                t >= last,
                "time series {} must be appended in order",
                self.name
            );
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Most recent value.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Value in effect at time `t` under zero-order hold (the last sample at
    /// or before `t`), or `None` before the first sample.
    #[must_use]
    pub fn sample_at(&self, t: SimTime) -> Option<f64> {
        match self.times.binary_search(&t) {
            Ok(mut idx) => {
                // Multiple samples may share a timestamp; take the last.
                while idx + 1 < self.times.len() && self.times[idx + 1] == t {
                    idx += 1;
                }
                Some(self.values[idx])
            }
            Err(0) => None,
            Err(idx) => Some(self.values[idx - 1]),
        }
    }

    /// Time-weighted mean over `[start, end)` under zero-order hold.
    ///
    /// Returns `None` if the window is empty or starts before the first
    /// sample.
    #[must_use]
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if end <= start {
            return None;
        }
        let mut current = self.sample_at(start)?;
        let mut cursor = start;
        let mut weighted = 0.0;
        for (t, v) in self.iter() {
            if t <= start {
                continue;
            }
            if t >= end {
                break;
            }
            weighted += current * (t - cursor).as_secs_f64();
            cursor = t;
            current = v;
        }
        weighted += current * (end - cursor).as_secs_f64();
        Some(weighted / (end - start).as_secs_f64())
    }

    /// Renders the series as two-column CSV (`time_secs,value`) with a
    /// header row — the hand-off format for external plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = format!("time_secs,{}\n", self.name);
        for (t, v) in self.iter() {
            out.push_str(&format!("{:.9},{v}\n", t.as_secs_f64()));
        }
        out
    }

    /// Summary over raw values (not time weighted).
    #[must_use]
    pub fn value_summary(&self) -> Summary {
        let mut s = Summary::new();
        for &v in &self.values {
            s.record(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new("t");
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(10), 3.0);
        ts.push(SimTime::from_secs(20), 5.0);
        ts
    }

    #[test]
    fn sample_at_holds_last_value() {
        let ts = series();
        assert_eq!(ts.sample_at(SimTime::from_secs(0)), Some(1.0));
        assert_eq!(ts.sample_at(SimTime::from_secs(5)), Some(1.0));
        assert_eq!(ts.sample_at(SimTime::from_secs(10)), Some(3.0));
        assert_eq!(ts.sample_at(SimTime::from_secs(99)), Some(5.0));
    }

    #[test]
    fn sample_before_first_is_none() {
        let mut ts = TimeSeries::new("t");
        ts.push(SimTime::from_secs(5), 1.0);
        assert_eq!(ts.sample_at(SimTime::from_secs(4)), None);
    }

    #[test]
    fn duplicate_timestamp_takes_last() {
        let mut ts = TimeSeries::new("t");
        ts.push(SimTime::from_secs(1), 1.0);
        ts.push(SimTime::from_secs(1), 2.0);
        assert_eq!(ts.sample_at(SimTime::from_secs(1)), Some(2.0));
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let ts = series();
        // [0,20): 1.0 for 10s, 3.0 for 10s => 2.0
        let m = ts.time_weighted_mean(SimTime::from_secs(0), SimTime::from_secs(20));
        assert!((m.expect("window covered") - 2.0).abs() < 1e-12);
        // [5,15): 1.0 for 5s, 3.0 for 5s => 2.0
        let m = ts.time_weighted_mean(SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((m.expect("window covered") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_none() {
        let ts = series();
        assert!(ts
            .time_weighted_mean(SimTime::from_secs(5), SimTime::from_secs(5))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new("t");
        ts.push(SimTime::from_secs(2), 0.0);
        ts.push(SimTime::from_secs(1), 0.0);
    }

    #[test]
    fn csv_round_trips_values() {
        let ts = series();
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_secs,t");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.000000000,1"));
        assert!(lines[3].starts_with("20.000000000,5"));
    }

    #[test]
    fn value_summary_covers_all_points() {
        let ts = series();
        let s = ts.value_summary();
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
