//! Hierarchical span tracing over the flat telemetry stream.
//!
//! Point events ([`crate::telemetry::Event`]) answer *what happened*; spans
//! answer *inside what*. A span is an interval on the simulation clock with
//! a typed [`SpanKind`], an id, an optional parent id, and a *track* — the
//! run it belongs to (one experiment cell, the profiler, …). Spans ride the
//! existing tracer as [`crate::telemetry::Event::SpanOpen`] /
//! [`crate::telemetry::Event::SpanClose`] pairs, so every sink, the
//! ordering layer, and `trace-diff` alignment work unchanged.
//!
//! ## Deterministic ids
//!
//! [`SpanId`]s are *derived*, never drawn from a global counter: the id
//! packs the [`SpanKind`] discriminant into the top byte and a
//! caller-chosen payload (request id, step index, cell index) into the low
//! 56 bits. Two same-seed runs — at any `--jobs` level under
//! [`crate::exec::sweep_traced`] — therefore serialize byte-identical span
//! events. Ids are unique per track, which is exactly the granularity
//! [`collect_spans`] keys on.
//!
//! ## Reconstruction
//!
//! [`collect_spans`] folds a record stream back into a [`SpanForest`]
//! (parent-linked interval forest across tracks), with typed [`SpanError`]s
//! for unbalanced streams — the Perfetto exporter refuses to emit a trace
//! whose opens and closes don't pair up.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::telemetry::{Event, TraceRecord};
use crate::time::SimTime;

/// What kind of interval a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// One request from admission to retirement.
    RequestLifecycle,
    /// One batched prefill step.
    Prefill,
    /// One batched decode iteration.
    DecodeIteration,
    /// One control interval of the experiment loop.
    ControllerInterval,
    /// One profiling-grid cell.
    ProfilerCell,
    /// One injected fault's active window.
    FaultWindow,
    /// One routing epoch of the fleet loop ([`crate::telemetry::Event`]
    /// stream from `run_fleet`), on the fleet track.
    FleetEpoch,
    /// One contiguous unhealthy window of a node (Suspect/Down/Draining/
    /// Recovering), on that node's per-node track.
    NodeHealthEpisode,
    /// One redispatch hop of a retried request batch, on the track of the
    /// node that failed the batch; hops of one batch chain by parent id.
    RedispatchHop,
}

impl SpanKind {
    /// All kinds, in discriminant order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::RequestLifecycle,
        SpanKind::Prefill,
        SpanKind::DecodeIteration,
        SpanKind::ControllerInterval,
        SpanKind::ProfilerCell,
        SpanKind::FaultWindow,
        SpanKind::FleetEpoch,
        SpanKind::NodeHealthEpisode,
        SpanKind::RedispatchHop,
    ];

    /// Stable human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::RequestLifecycle => "request",
            SpanKind::Prefill => "prefill",
            SpanKind::DecodeIteration => "decode",
            SpanKind::ControllerInterval => "interval",
            SpanKind::ProfilerCell => "cell",
            SpanKind::FaultWindow => "fault",
            SpanKind::FleetEpoch => "epoch",
            SpanKind::NodeHealthEpisode => "health",
            SpanKind::RedispatchHop => "hop",
        }
    }

    /// Stable non-zero discriminant used in the [`SpanId`] id scheme.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SpanKind::RequestLifecycle => 1,
            SpanKind::Prefill => 2,
            SpanKind::DecodeIteration => 3,
            SpanKind::ControllerInterval => 4,
            SpanKind::ProfilerCell => 5,
            SpanKind::FaultWindow => 6,
            SpanKind::FleetEpoch => 7,
            SpanKind::NodeHealthEpisode => 8,
            SpanKind::RedispatchHop => 9,
        }
    }
}

/// A span identifier, deterministic by construction.
///
/// The top byte holds the kind's [`SpanKind::code`], the low 56 bits a
/// caller-chosen payload that is unique within its (track, kind) scope —
/// request id, step index, cell index. No global counter is involved, so
/// ids are reproducible across runs and worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Derives the id for `kind` with a scope-unique `payload`.
    #[must_use]
    pub fn derive(kind: SpanKind, payload: u64) -> Self {
        SpanId((u64::from(kind.code()) << 56) | (payload & ((1 << 56) - 1)))
    }

    /// The kind encoded in the top byte, if it maps to a known kind.
    #[must_use]
    pub fn kind(self) -> Option<SpanKind> {
        let code = (self.0 >> 56) as u8;
        SpanKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// The caller payload in the low 56 bits.
    #[must_use]
    pub fn payload(self) -> u64 {
        self.0 & ((1 << 56) - 1)
    }
}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span's derived id (raw `u64` form).
    pub id: u64,
    /// Interval kind.
    pub kind: SpanKind,
    /// The track (run) the span belongs to.
    pub track: String,
    /// Human-readable label carried on the open event.
    pub label: String,
    /// Index of the parent span in [`SpanForest::nodes`], if any.
    pub parent: Option<usize>,
    /// Open time.
    pub open: SimTime,
    /// Close time (≥ `open`).
    pub close: SimTime,
    /// Indices of child spans, in close order.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// The span's duration in seconds.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        self.close.saturating_since(self.open).as_secs_f64()
    }
}

/// All spans reconstructed from one trace, parent-linked across tracks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanForest {
    /// Every closed span, in close order.
    pub nodes: Vec<SpanNode>,
    /// Indices of parentless spans, in close order.
    pub roots: Vec<usize>,
}

impl SpanForest {
    /// Spans of one kind, in close order.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &SpanNode> {
        self.nodes.iter().filter(move |n| n.kind == kind)
    }
}

/// Why a record stream does not fold into a well-formed span forest.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanError {
    /// A close arrived for a span that was never opened (or closed twice).
    CloseWithoutOpen {
        /// Raw span id of the offending close.
        id: u64,
        /// Track it arrived on.
        track: String,
    },
    /// A second open arrived for an id that is still open.
    DuplicateOpen {
        /// Raw span id opened twice.
        id: u64,
        /// Track it arrived on.
        track: String,
    },
    /// The stream ended with spans still open.
    UnclosedSpans {
        /// How many spans never closed.
        count: usize,
        /// Raw id of one of them, for the error message.
        example_id: u64,
    },
    /// A span closed before it opened.
    CloseBeforeOpen {
        /// Raw span id of the inverted interval.
        id: u64,
        /// Track it arrived on.
        track: String,
    },
}

impl fmt::Display for SpanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanError::CloseWithoutOpen { id, track } => {
                write!(f, "span close without open: id {id:#x} on track {track:?}")
            }
            SpanError::DuplicateOpen { id, track } => {
                write!(f, "duplicate span open: id {id:#x} on track {track:?}")
            }
            SpanError::UnclosedSpans { count, example_id } => {
                write!(f, "{count} span(s) never closed (e.g. id {example_id:#x})")
            }
            SpanError::CloseBeforeOpen { id, track } => {
                write!(
                    f,
                    "span closes before it opens: id {id:#x} on track {track:?}"
                )
            }
        }
    }
}

impl std::error::Error for SpanError {}

/// Folds a record stream into a [`SpanForest`].
///
/// Structural matching keys opens and closes by `(track, id)`. Parent
/// links resolve by the parent id recorded on the open event, against the
/// span with that id on the same track; an unresolved parent id yields a
/// root span rather than an error (a truncation-tolerant choice for
/// streams whose parent was filtered out).
///
/// # Errors
///
/// Returns the first structural violation found; see [`SpanError`].
pub fn collect_spans(records: &[TraceRecord]) -> Result<SpanForest, SpanError> {
    struct OpenSpan {
        kind: SpanKind,
        label: String,
        parent_id: Option<u64>,
        open: SimTime,
    }
    // Pass 1: match opens to closes into flat nodes (close order).
    let mut open: HashMap<(String, u64), OpenSpan> = HashMap::new();
    let mut nodes: Vec<SpanNode> = Vec::new();
    let mut parent_ids: Vec<Option<u64>> = Vec::new();
    for record in records {
        match &record.event {
            Event::SpanOpen {
                id,
                parent,
                kind,
                track,
                label,
            } => {
                let prev = open.insert(
                    (track.clone(), *id),
                    OpenSpan {
                        kind: *kind,
                        label: label.clone(),
                        parent_id: *parent,
                        open: record.at,
                    },
                );
                if prev.is_some() {
                    return Err(SpanError::DuplicateOpen {
                        id: *id,
                        track: track.clone(),
                    });
                }
            }
            Event::SpanClose { id, track, .. } => {
                let Some(span) = open.remove(&(track.clone(), *id)) else {
                    return Err(SpanError::CloseWithoutOpen {
                        id: *id,
                        track: track.clone(),
                    });
                };
                if record.at < span.open {
                    return Err(SpanError::CloseBeforeOpen {
                        id: *id,
                        track: track.clone(),
                    });
                }
                parent_ids.push(span.parent_id);
                nodes.push(SpanNode {
                    id: *id,
                    kind: span.kind,
                    track: track.clone(),
                    label: span.label,
                    parent: None,
                    open: span.open,
                    close: record.at,
                    children: Vec::new(),
                });
            }
            _ => {}
        }
    }
    if let Some(((_, example_id), _)) = open.iter().next() {
        return Err(SpanError::UnclosedSpans {
            count: open.len(),
            example_id: *example_id,
        });
    }

    // Pass 2: resolve parent links by (track, id) across all nodes.
    let by_id: HashMap<(&str, u64), usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| ((n.track.as_str(), n.id), i))
        .collect();
    let links: Vec<Option<usize>> = nodes
        .iter()
        .zip(&parent_ids)
        .enumerate()
        .map(|(i, (n, pid))| {
            pid.and_then(|pid| by_id.get(&(n.track.as_str(), pid)).copied())
                .filter(|&p| p != i)
        })
        .collect();
    let mut forest = SpanForest {
        nodes,
        roots: Vec::new(),
    };
    for (i, link) in links.into_iter().enumerate() {
        forest.nodes[i].parent = link;
        match link {
            Some(p) => forest.nodes[p].children.push(i),
            None => forest.roots.push(i),
        }
    }
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn rec(at_secs: f64, event: Event) -> TraceRecord {
        TraceRecord {
            at: SimTime::ZERO + SimDuration::from_secs_f64(at_secs),
            event,
        }
    }

    fn open(id: SpanId, parent: Option<SpanId>, kind: SpanKind, at: f64) -> TraceRecord {
        rec(
            at,
            Event::SpanOpen {
                id: id.0,
                parent: parent.map(|p| p.0),
                kind,
                track: "t0".to_string(),
                label: kind.label().to_string(),
            },
        )
    }

    fn close(id: SpanId, kind: SpanKind, at: f64) -> TraceRecord {
        rec(
            at,
            Event::SpanClose {
                id: id.0,
                kind,
                track: "t0".to_string(),
            },
        )
    }

    #[test]
    fn ids_pack_kind_and_payload() {
        for kind in SpanKind::ALL {
            let id = SpanId::derive(kind, 0xdead_beef);
            assert_eq!(id.kind(), Some(kind));
            assert_eq!(id.payload(), 0xdead_beef);
        }
        // Distinct kinds with the same payload never collide.
        let ids: Vec<u64> = SpanKind::ALL
            .iter()
            .map(|&k| SpanId::derive(k, 42).0)
            .collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn nested_spans_link_to_parents() {
        let req = SpanId::derive(SpanKind::RequestLifecycle, 7);
        let dec = SpanId::derive(SpanKind::DecodeIteration, 0);
        let records = vec![
            open(req, None, SpanKind::RequestLifecycle, 0.0),
            open(dec, Some(req), SpanKind::DecodeIteration, 0.5),
            close(dec, SpanKind::DecodeIteration, 0.6),
            close(req, SpanKind::RequestLifecycle, 1.0),
        ];
        let forest = collect_spans(&records).expect("well-formed");
        assert_eq!(forest.nodes.len(), 2);
        assert_eq!(forest.roots.len(), 1);
        let root = &forest.nodes[forest.roots[0]];
        assert_eq!(root.kind, SpanKind::RequestLifecycle);
        assert_eq!(root.children.len(), 1);
        let child = &forest.nodes[root.children[0]];
        assert_eq!(child.kind, SpanKind::DecodeIteration);
        assert_eq!(child.parent, Some(forest.roots[0]));
        assert!((child.duration_secs() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn same_id_on_different_tracks_is_fine() {
        let id = SpanId::derive(SpanKind::ControllerInterval, 3);
        let mk = |track: &str, at, is_open| {
            rec(
                at,
                if is_open {
                    Event::SpanOpen {
                        id: id.0,
                        parent: None,
                        kind: SpanKind::ControllerInterval,
                        track: track.to_string(),
                        label: "interval".to_string(),
                    }
                } else {
                    Event::SpanClose {
                        id: id.0,
                        kind: SpanKind::ControllerInterval,
                        track: track.to_string(),
                    }
                },
            )
        };
        let records = vec![
            mk("a", 0.0, true),
            mk("b", 0.1, true),
            mk("a", 0.5, false),
            mk("b", 0.6, false),
        ];
        let forest = collect_spans(&records).expect("tracks are independent");
        assert_eq!(forest.nodes.len(), 2);
        assert_eq!(forest.roots.len(), 2);
    }

    #[test]
    fn structural_violations_are_typed() {
        let req = SpanId::derive(SpanKind::RequestLifecycle, 1);
        // Close without open.
        let err = collect_spans(&[close(req, SpanKind::RequestLifecycle, 1.0)]).unwrap_err();
        assert!(matches!(err, SpanError::CloseWithoutOpen { .. }), "{err}");
        // Duplicate open.
        let err = collect_spans(&[
            open(req, None, SpanKind::RequestLifecycle, 0.0),
            open(req, None, SpanKind::RequestLifecycle, 0.5),
        ])
        .unwrap_err();
        assert!(matches!(err, SpanError::DuplicateOpen { .. }), "{err}");
        // Unclosed at end of stream.
        let err = collect_spans(&[open(req, None, SpanKind::RequestLifecycle, 0.0)]).unwrap_err();
        assert!(
            matches!(err, SpanError::UnclosedSpans { count: 1, .. }),
            "{err}"
        );
        // Errors render through Display.
        assert!(err.to_string().contains("never closed"));
    }

    #[test]
    fn unresolved_parent_degrades_to_root() {
        let dec = SpanId::derive(SpanKind::DecodeIteration, 9);
        let ghost = SpanId::derive(SpanKind::RequestLifecycle, 999);
        let records = vec![
            open(dec, Some(ghost), SpanKind::DecodeIteration, 0.0),
            close(dec, SpanKind::DecodeIteration, 0.2),
        ];
        let forest = collect_spans(&records).expect("tolerates filtered parents");
        assert_eq!(forest.roots, vec![0]);
        assert_eq!(forest.nodes[0].parent, None);
    }
}
