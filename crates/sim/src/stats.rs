//! Streaming and batch statistics used across the reproduction.
//!
//! The paper reports 50% ("average" in its bucket tables), 90% tail, and
//! full CDFs of performance and resource allocations. [`Summary`] provides
//! streaming moments; [`Samples`] retains observations for exact quantiles
//! and CDF extraction.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use aum_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored (and counted
    /// nowhere) so a single degenerate model step cannot poison a report.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or +inf when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -inf when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Retained sample set with exact quantiles and CDF extraction.
///
/// # Examples
///
/// ```
/// use aum_sim::stats::Samples;
///
/// let s: Samples = (0..=100).map(f64::from).collect();
/// assert_eq!(s.quantile(0.5), 50.0);
/// assert_eq!(s.quantile(0.9), 90.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation; non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of retained observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
            self.sorted = true;
        }
    }

    /// Exact sample quantile with nearest-rank interpolation.
    ///
    /// Returns 0 for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.values.is_empty() {
            return 0.0;
        }
        let mut copy = self.clone();
        copy.ensure_sorted();
        let n = copy.values.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            copy.values[lo]
        } else {
            let frac = pos - lo as f64;
            copy.values[lo] * (1.0 - frac) + copy.values[hi] * frac
        }
    }

    /// Fraction of observations at or below `threshold`.
    #[must_use]
    pub fn fraction_at_most(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let hit = self.values.iter().filter(|&&v| v <= threshold).count();
        hit as f64 / self.values.len() as f64
    }

    /// Extracts `points` evenly spaced CDF points `(value, cumulative_prob)`.
    ///
    /// Returns an empty vector for an empty sample set.
    #[must_use]
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.values.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut copy = self.clone();
        copy.ensure_sorted();
        let n = copy.values.len();
        (1..=points)
            .map(|i| {
                let p = i as f64 / points as f64;
                let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
                (copy.values[idx], p)
            })
            .collect()
    }

    /// View of the raw values (unsorted, in insertion order).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Converts to a streaming [`Summary`].
    #[must_use]
    pub fn summary(&self) -> Summary {
        let mut s = Summary::new();
        for &v in &self.values {
            s.record(v);
        }
        s
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Samples::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the range end.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let mut all = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for i in 0..100 {
            let v = (i as f64).sin() * 10.0;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(1.0);
        let before = a.mean();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before);
        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn quantiles_interpolate() {
        let s: Samples = (0..=10).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 10.0);
        assert_eq!(s.quantile(0.5), 5.0);
        assert!((s.quantile(0.95) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let s = Samples::new();
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn fraction_at_most_counts() {
        let s: Samples = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.fraction_at_most(2.5), 0.5);
        assert_eq!(s.fraction_at_most(0.0), 0.0);
        assert_eq!(s.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let s: Samples = (0..500).map(|i| ((i * 37) % 100) as f64).collect();
        let cdf = s.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values non-decreasing");
            assert!(w[0].1 < w[1].1, "probabilities strictly increasing");
        }
        assert!((cdf.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [-1.0, 0.0, 0.5, 5.0, 9.999, 10.0, 42.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn samples_extend_and_values() {
        let mut s = Samples::new();
        s.extend([3.0, 1.0, 2.0]);
        assert_eq!(s.values(), &[3.0, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        let summary = s.summary();
        assert_eq!(summary.count(), 3);
        assert!((summary.mean() - 2.0).abs() < 1e-12);
    }
}
