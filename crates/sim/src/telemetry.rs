//! Structured telemetry: typed events, trace sinks, and a metrics registry.
//!
//! AUM's contribution is a controller that *reacts* to runtime telemetry, so
//! the reproduction must be able to show the causal chain behind every
//! decision, not just endpoint tables. This module is the spine for that:
//!
//! - [`Event`] — a typed, serde-serializable record of everything notable
//!   that happens across the stack: request lifecycle and iterations in the
//!   LLM engine, frequency-license transitions and thermal throttling in the
//!   platform, RDT reallocations, controller decisions **with their
//!   reasons**, and profiler progress.
//! - [`TraceSink`] — where events go. [`NullSink`] is the zero-cost default
//!   (emission sites pay one branch; event construction is skipped
//!   entirely), [`MemorySink`] collects in-process, [`JsonlSink`] streams
//!   one JSON object per line to a file for offline analysis
//!   (`repro trace-summary`).
//! - [`Tracer`] — the cheap cloneable handle threaded through the engine,
//!   platform, controller and experiment loop so one sink observes the
//!   whole stack.
//! - [`MetricsRegistry`] — counters/gauges/histograms snapshotted every
//!   control interval into a time series usable by experiment outcomes.
//!
//! Events carry only primitives (ids, lengths, seconds, way counts), so the
//! JSONL schema is stable and self-describing; `TraceRecord` pairs each
//! event with its integer-nanosecond timestamp for lossless round-trips.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::stats::Samples;
use crate::time::SimTime;

/// Which serving phase an iteration belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Prompt processing.
    Prefill,
    /// Token generation.
    Decode,
}

/// Which SLO metric an observation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloMetric {
    /// Time-to-first-token (prefill deadline).
    Ttft,
    /// Time-per-output-token (decode deadline).
    Tpot,
}

/// Core region by AU-usage class (mirrors the platform topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionClass {
    /// AU-high region (prefill / AMX-heavy).
    High,
    /// AU-low region (decode / AVX-heavy).
    Low,
    /// AU-none region (best-effort scalar work).
    None,
}

/// The slack analyzer's verdict at a control boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlackVerdict {
    /// Measured tails fit inside the runtime budgets.
    Meeting,
    /// At least one measured tail exceeds its runtime budget.
    Violating,
}

/// The controller's resilience state (safe-mode state machine).
///
/// Transitions are driven by persistent SLO breach pressure and sensor
/// distrust; see `aum::controller` for the machine itself. Lives here so
/// [`Event::SafeModeTransition`] can carry a typed state without a
/// cross-crate dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResilienceMode {
    /// Healthy: the full Algorithm-1 loop (harvest/tune/switch) runs.
    Normal,
    /// Elevated breach pressure: harvesting is frozen, returns still run.
    Degraded,
    /// Persistent breach pressure: BE allocation shed, conservative
    /// division pinned.
    SafeMode,
    /// Pressure cleared: probing resources back toward Normal.
    Recovering,
}

/// A fleet node's health as the router sees it (epoch state machine).
///
/// Driven by heartbeat and violation-rate signals in `aum::fleet`; lives
/// here so [`Event::NodeHealthTransition`] can carry typed states without
/// a cross-crate dependency (mirroring [`ResilienceMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Heartbeats fresh, violation rate nominal: full routing share.
    Healthy,
    /// Missed heartbeats or elevated violations: share held, under watch.
    Suspect,
    /// Declared dead: receives no traffic; stranded requests re-dispatch.
    Down,
    /// Rolling-restart drain: finishes what it has, accepts nothing new.
    Draining,
    /// Back from Down/Draining: ramping toward a full share.
    Recovering,
}

/// What kind of action a controller decision took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionKind {
    /// One harvesting step along the resource ladder.
    Harvest,
    /// One conservative step returning resources to the AU class.
    Return,
    /// A processor-division switch.
    Switch,
}

/// One notable occurrence somewhere in the sim→platform→LLM→controller
/// stack. Variants carry primitives (plus same-crate value types like
/// [`crate::attrib::CauseVec`]), so the serialized schema is stable and
/// needs no cross-crate types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The engine admitted a request into the running batch.
    RequestAdmitted {
        /// Request id.
        id: u64,
        /// Prompt length in tokens.
        input_len: usize,
        /// Output budget in tokens.
        output_len: usize,
    },
    /// A request emitted its last token and retired.
    RequestFinished {
        /// Request id.
        id: u64,
        /// Output tokens generated in the decode pool (0 when the request
        /// completed at prefill).
        generated: usize,
        /// Mean *wall-clock* time per generated token in seconds,
        /// stall-inclusive (0 when nothing was generated).
        mean_tpot_secs: f64,
        /// Time-to-first-token in seconds (arrival → end of prefill), so
        /// the trace alone supports windowed TTFT series.
        ttft_secs: f64,
    },
    /// The engine completed one batched iteration.
    IterationCompleted {
        /// Prefill or decode.
        phase: PhaseKind,
        /// Requests in the batch.
        batch: usize,
        /// Tokens produced (decode) or prompt tokens processed (prefill).
        tokens: usize,
        /// Modeled wall time of the iteration in seconds.
        duration_secs: f64,
    },
    /// A measured latency exceeded its runtime SLO budget.
    SloBreach {
        /// Which deadline.
        metric: SloMetric,
        /// The measured value in seconds.
        observed_secs: f64,
        /// The budget it exceeded, in seconds.
        budget_secs: f64,
    },
    /// A core region's effective frequency changed (license transition,
    /// power stress, TDP clipping, or thermal state).
    FreqTransition {
        /// The affected region.
        region: RegionClass,
        /// Frequency before, GHz.
        from_ghz: f64,
        /// Frequency after, GHz.
        to_ghz: f64,
    },
    /// The thermal integrator started or deepened frequency throttling.
    ThermalThrottle {
        /// The affected region.
        region: RegionClass,
        /// Frequency reduction applied, GHz.
        drop_ghz: f64,
    },
    /// The resource manager moved RDT allocations (cache ways / memory
    /// bandwidth) for the best-effort class.
    RdtReallocation {
        /// LLC ways granted to the latency-critical class before.
        llc_ways_from: u32,
        /// LLC ways granted after.
        llc_ways_to: u32,
        /// L2 ways granted before.
        l2_ways_from: u32,
        /// L2 ways granted after.
        l2_ways_to: u32,
        /// Memory-bandwidth fraction before.
        mem_bw_from: f64,
        /// Memory-bandwidth fraction after.
        mem_bw_to: f64,
    },
    /// The controller took a non-trivial action, with the full reasoning
    /// behind it (Algorithm 1's observable state).
    ControllerDecision {
        /// Harvest / Return / Switch.
        kind: DecisionKind,
        /// Human-readable action, e.g. `"Harvest(cfg 2→3)"`.
        action: String,
        /// The slack analyzer's verdict that drove the stage choice.
        verdict: SlackVerdict,
        /// Worst per-request LAG slack in seconds (positive = ahead).
        lag_secs: f64,
        /// Usage-weighted deviation δ_AU at the decision point.
        deviation: f64,
        /// Whether δ_AU exceeded the switch threshold (collision detected:
        /// tuning deemed insufficient).
        collision: bool,
        /// Human-readable cause, e.g.
        /// `"TPOT p50 0.142s > SLO_L 0.120s"`.
        reason: String,
    },
    /// The background profiler finished one grid cell.
    ProfilerProgress {
        /// Cells completed so far (including this one).
        completed: usize,
        /// Total cells in the profiling grid.
        total: usize,
        /// Division index of the finished cell.
        division: usize,
        /// Allocation-configuration index of the finished cell.
        config: usize,
    },
    /// The fault plane activated a scripted fault.
    FaultInjected {
        /// Stable fault-kind label, e.g. `"BandwidthDegrade"`.
        kind: String,
        /// Human-readable parameters, e.g. `"frac 0.60"`.
        detail: String,
    },
    /// A scripted fault's recovery point was reached and its effect undone.
    FaultRecovered {
        /// Stable fault-kind label of the recovered fault.
        kind: String,
    },
    /// A scripted fault event falls outside the run window and will never
    /// fire — a mis-authored `FaultPlan`, warned rather than silently
    /// dropped.
    FaultOutsideWindow {
        /// Stable fault-kind label of the skipped event.
        kind: String,
        /// When the event was scheduled, seconds.
        at_secs: f64,
        /// The run duration it missed, seconds.
        duration_secs: f64,
    },
    /// The controller's plausibility filter rejected a sensor reading and
    /// substituted a filtered value.
    SensorRejected {
        /// Which observation, e.g. `"ttft_p90"`, `"tpot_p50"`.
        sensor: String,
        /// The implausible raw reading.
        observed: f64,
        /// The value used instead (median-of-last-k).
        substituted: f64,
        /// Why it was rejected, e.g. `"outlier"` or `"stale"`.
        reason: String,
    },
    /// The controller's resilience state machine changed state.
    SafeModeTransition {
        /// State before.
        from: ResilienceMode,
        /// State after.
        to: ResilienceMode,
        /// What drove the transition, e.g. `"breach pressure 9/16"`.
        reason: String,
    },
    /// One region's attribution-ledger row for one control interval (see
    /// [`crate::attrib`]). Emitted per region per interval when tracing is
    /// on; `repro trace-diff` aligns two runs on these records.
    AttributionSample {
        /// The platform region attributed.
        region: crate::attrib::Region,
        /// Interval length, seconds.
        dt_secs: f64,
        /// Seconds by cause (sums to `dt_secs`).
        time: crate::attrib::CauseVec,
        /// Joules by cause.
        energy: crate::attrib::CauseVec,
    },
    /// A hierarchical span opened (see [`crate::span`]). `id` is derived
    /// via [`crate::span::SpanId::derive`] — deterministic across runs and
    /// worker counts — and unique per `track`.
    SpanOpen {
        /// Derived span id (raw form).
        id: u64,
        /// Enclosing span's id on the same track, if any.
        parent: Option<u64>,
        /// Interval kind.
        kind: crate::span::SpanKind,
        /// The run this span belongs to (one experiment cell, the
        /// profiler, …); spans never nest across tracks.
        track: String,
        /// Human-readable label, e.g. `"req 7"` or `"interval 12"`.
        label: String,
    },
    /// The matching close of an earlier [`Event::SpanOpen`] on `track`.
    SpanClose {
        /// Derived span id of the span being closed.
        id: u64,
        /// Interval kind (redundant with the id's top byte; kept explicit
        /// so a close line is self-describing).
        kind: crate::span::SpanKind,
        /// The track the span opened on.
        track: String,
    },
    /// The SLO deadlines in force for this run, emitted once at the start
    /// so a trace is self-contained for burn-rate analysis.
    SloTargets {
        /// TTFT deadline, seconds.
        ttft_secs: f64,
        /// Per-token (TPOT/TBT) deadline, seconds.
        tpot_secs: f64,
    },
    /// The fleet fault plane activated (or recovered) a node-scoped fault.
    NodeFault {
        /// Index of the affected node in fleet order.
        node: usize,
        /// Stable fault-kind label, e.g. `"Crash"` or `"Straggler"`.
        kind: String,
        /// Human-readable parameters, e.g. `"capacity /3.0"`.
        detail: String,
        /// `true` on activation, `false` on the recovery edge.
        active: bool,
    },
    /// The router's per-node health state machine changed state.
    NodeHealthTransition {
        /// Index of the node in fleet order.
        node: usize,
        /// State before.
        from: NodeHealth,
        /// State after.
        to: NodeHealth,
        /// What drove the transition, e.g. `"3 missed heartbeats"`.
        reason: String,
    },
    /// Requests stranded on a dead/unreachable node were queued for
    /// re-dispatch with exponential backoff (one aggregate record per node
    /// per epoch).
    RequestRedispatch {
        /// Node the requests were stranded on.
        node: usize,
        /// How many requests re-entered the dispatch pool.
        count: u64,
        /// Delivery attempt these requests are now on (first retry = 2).
        attempt: u32,
        /// Epochs the batch backs off before re-dispatch.
        backoff_epochs: u32,
    },
    /// The admission controller shed load under aggregate overload (one
    /// record per priority class per epoch where shedding occurred).
    LoadShed {
        /// Priority class shed, e.g. `"best-effort"`.
        class: String,
        /// Requests shed from that class this epoch.
        count: u64,
        /// Router epoch index the shed happened in.
        epoch: u64,
    },
    /// One fleet node's metrics registry, snapshotted at an epoch boundary
    /// (emitted by `aum::fleet::run_fleet` on health transitions so the
    /// flight recorder can pin the offending node's state into `node-down`
    /// incident dumps — see [`crate::flight`]).
    NodeMetricsSnapshot {
        /// Index of the node in fleet order.
        node: usize,
        /// Stable node label, e.g. `"node0/GenA-SPR-HBM"`.
        label: String,
        /// The node's registry state at snapshot time.
        snapshot: MetricsSnapshot,
    },
    /// The run-health watchdog saw a cell make no serving progress for
    /// `intervals` consecutive control intervals while work was queued — a
    /// stall that would otherwise only surface as a hung sweep. Emitted
    /// once per stall episode (the counter re-arms after progress resumes)
    /// and doubles as a flight-recorder trigger (see [`crate::flight`]).
    WatchdogStall {
        /// Consecutive zero-progress control intervals observed.
        intervals: u32,
        /// Requests waiting in the engine queue at detection time.
        queue_len: usize,
        /// Human-readable context, e.g. `"no tokens for 8.0s"`.
        detail: String,
    },
}

impl Event {
    /// A short stable label for per-type statistics.
    #[must_use]
    pub fn kind_label(&self) -> &'static str {
        match self {
            Event::RequestAdmitted { .. } => "RequestAdmitted",
            Event::RequestFinished { .. } => "RequestFinished",
            Event::IterationCompleted { .. } => "IterationCompleted",
            Event::SloBreach { .. } => "SloBreach",
            Event::FreqTransition { .. } => "FreqTransition",
            Event::ThermalThrottle { .. } => "ThermalThrottle",
            Event::RdtReallocation { .. } => "RdtReallocation",
            Event::ControllerDecision { .. } => "ControllerDecision",
            Event::ProfilerProgress { .. } => "ProfilerProgress",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::FaultRecovered { .. } => "FaultRecovered",
            Event::FaultOutsideWindow { .. } => "FaultOutsideWindow",
            Event::SensorRejected { .. } => "SensorRejected",
            Event::SafeModeTransition { .. } => "SafeModeTransition",
            Event::AttributionSample { .. } => "AttributionSample",
            Event::SpanOpen { .. } => "SpanOpen",
            Event::SpanClose { .. } => "SpanClose",
            Event::SloTargets { .. } => "SloTargets",
            Event::NodeFault { .. } => "NodeFault",
            Event::NodeHealthTransition { .. } => "NodeHealthTransition",
            Event::RequestRedispatch { .. } => "RequestRedispatch",
            Event::LoadShed { .. } => "LoadShed",
            Event::NodeMetricsSnapshot { .. } => "NodeMetricsSnapshot",
            Event::WatchdogStall { .. } => "WatchdogStall",
        }
    }
}

/// A timestamped event — the unit a sink receives and a JSONL line holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time of the event (integer nanoseconds — lossless).
    pub at: SimTime,
    /// The event itself.
    pub event: Event,
}

/// Destination for trace records.
///
/// Contract: [`Tracer::emit`] only constructs the event and calls
/// [`TraceSink::record`] when a sink is attached, so an absent sink (the
/// default) costs a single branch per site — nothing is formatted,
/// allocated, or written. The `telemetry_overhead` bench in `aum-bench`
/// holds this to "within noise of uninstrumented".
pub trait TraceSink {
    /// Accepts one record. Called in simulation order per emitting
    /// component.
    fn record(&mut self, record: &TraceRecord);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush_sink(&mut self) {}
}

/// Discards everything (the zero-cost default stands in for "no sink"; a
/// `Tracer` built over `NullSink` still skips event construction only at
/// the sink boundary, so prefer `Tracer::disabled()` in hot paths).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _record: &TraceRecord) {}
}

/// Collects records in memory, in arrival order.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The records collected so far.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the sink, returning the collected records.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// Streams records to a file as JSON Lines: one `TraceRecord` object per
/// line, in emission order.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    lines: u64,
}

impl JsonlSink {
    /// Creates (truncates) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: BufWriter::new(file),
            lines: 0,
        })
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        self.lines
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, record: &TraceRecord) {
        let line = serde_json::to_string(record).expect("trace records always serialize");
        self.out
            .write_all(line.as_bytes())
            .expect("trace file write");
        self.out.write_all(b"\n").expect("trace file write");
        self.lines += 1;
    }

    fn flush_sink(&mut self) {
        self.out.flush().expect("trace file flush");
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Buffers records and forwards them to an inner sink in ascending
/// timestamp order (stable for ties) at every flush boundary.
///
/// The instrumented stack simulates one component at a time over each
/// control interval, so raw emission order interleaves overlapping time
/// windows — e.g. a decode iteration that completes just past an interval
/// boundary is emitted before the next interval's platform events. Wrapping
/// a file-backed sink in `OrderingSink` yields a stream that is monotonic
/// in sim time within each flushed segment; the experiment harness flushes
/// once per run, so a single-run trace is globally monotonic.
///
/// **Stability guarantee**: records with equal [`SimTime`] are forwarded in
/// emission order. The tie-break is a monotonic per-sink sequence number
/// assigned at [`TraceSink::record`] time (it persists across flush
/// boundaries), so the ordering is deterministic by construction rather
/// than by relying on the sort algorithm's stability — `repro trace-diff`
/// alignment depends on two same-seed runs serializing byte-identical
/// streams.
#[derive(Debug)]
pub struct OrderingSink<S: TraceSink> {
    inner: S,
    seq: u64,
    pending: Vec<(u64, TraceRecord)>,
}

impl<S: TraceSink> OrderingSink<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        OrderingSink {
            inner,
            seq: 0,
            pending: Vec::new(),
        }
    }

    /// The wrapped sink (records still pending are not yet visible to it).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn forward(&mut self) {
        self.pending.sort_by_key(|(seq, r)| (r.at, *seq));
        for (_, record) in std::mem::take(&mut self.pending) {
            self.inner.record(&record);
        }
    }
}

impl<S: TraceSink> TraceSink for OrderingSink<S> {
    fn record(&mut self, record: &TraceRecord) {
        self.pending.push((self.seq, record.clone()));
        self.seq += 1;
    }

    fn flush_sink(&mut self) {
        self.forward();
        self.inner.flush_sink();
    }
}

impl<S: TraceSink> Drop for OrderingSink<S> {
    fn drop(&mut self) {
        self.forward();
    }
}

/// A malformed line in a JSONL trace, with its 1-based line number.
///
/// A truncated write (a crash mid-line) surfaces as the exact line that
/// failed, so `repro trace-diff` and `trace-export` can report "line 812:
/// unexpected end of input" instead of panicking on a bare parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the first malformed line.
    pub line: usize,
    /// The underlying parser message.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a JSONL trace produced by [`JsonlSink`] back into records.
///
/// Blank lines are skipped; an empty input yields an empty vector (callers
/// that need at least one record check for that themselves).
///
/// # Errors
///
/// Returns the first malformed line as a typed [`TraceParseError`]
/// carrying its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            serde_json::from_str::<TraceRecord>(l).map_err(|e| TraceParseError {
                line: i + 1,
                message: e.to_string(),
            })
        })
        .collect()
}

/// Cheap cloneable handle the whole stack emits through.
///
/// A disabled tracer (the default) reduces [`Tracer::emit`] to one branch:
/// the event-construction closure never runs. Cloning shares the underlying
/// sink, so the engine, platform, controller and experiment loop all feed
/// one stream. The sink sits behind a mutex so instrumented components stay
/// `Send + Sync` (experiments run concurrently across threads); an
/// uncontended lock per recorded event is noise next to constructing and
/// serializing the event.
#[derive(Default, Clone)]
pub struct Tracer {
    sink: Option<Arc<Mutex<dyn TraceSink + Send>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that drops everything at zero cost.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A tracer owning `sink`.
    #[must_use]
    pub fn new(sink: impl TraceSink + Send + 'static) -> Self {
        Tracer {
            sink: Some(Arc::new(Mutex::new(sink))),
        }
    }

    /// A tracer plus a shared handle to its sink, for reading results back
    /// after a run (e.g. a [`MemorySink`]'s records).
    #[must_use]
    pub fn shared<S: TraceSink + Send + 'static>(sink: S) -> (Self, Arc<Mutex<S>>) {
        let shared = Arc::new(Mutex::new(sink));
        (
            Tracer {
                sink: Some(shared.clone()),
            },
            shared,
        )
    }

    /// Whether a sink is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event at simulation time `at`. The closure runs only when a
    /// sink is attached — emission sites stay free when tracing is off.
    #[inline]
    pub fn emit(&self, at: SimTime, event: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            let record = TraceRecord { at, event: event() };
            sink.lock().expect("trace sink lock").record(&record);
        }
    }

    /// Flushes the sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock").flush_sink();
        }
    }
}

/// One point-in-time capture of the registry, taken per control interval.
///
/// The maps are `Arc`-shared with the registry's internal caches: an
/// interval in which no counter (or gauge) changed reuses the previous
/// snapshot's allocation instead of cloning every entry, so a long run's
/// history costs O(changed intervals), not O(intervals × map size). The
/// `telemetry_overhead` bench's `registry_snapshot_10k` case asserts this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Monotonic counters at that time.
    pub counters: Arc<BTreeMap<String, u64>>,
    /// Instantaneous gauges, plus histogram quantiles materialized as
    /// `"<name>/p50"`, `"<name>/p90"`, `"<name>/p99"` entries.
    pub gauges: Arc<BTreeMap<String, f64>>,
}

/// Lightweight metrics registry: named counters, gauges and histograms,
/// snapshotted on demand into a time series.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Samples>,
    history: Vec<MetricsSnapshot>,
    /// Snapshot of `counters` as of the last `snapshot()` call, reused
    /// while no counter mutates. `None` = dirty.
    counters_cache: Option<Arc<BTreeMap<String, u64>>>,
    /// Same for `gauges` (only usable when no histogram quantiles need
    /// materializing into the snapshot).
    gauges_cache: Option<Arc<BTreeMap<String, f64>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        self.counters_cache = None;
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets an instantaneous gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges_cache = None;
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Captures the current state into the time series and returns the
    /// snapshot. Histograms contribute p50/p90/p99 gauges and reset, so
    /// each snapshot describes one interval's distribution.
    ///
    /// Quiet intervals are cheap: when no counter (or gauge/histogram)
    /// changed since the previous snapshot, the new snapshot shares the
    /// previous one's map allocation via `Arc` instead of deep-cloning it.
    pub fn snapshot(&mut self, at: SimTime) -> &MetricsSnapshot {
        let counters = self
            .counters_cache
            .get_or_insert_with(|| Arc::new(self.counters.clone()))
            .clone();
        let gauges = if self.histograms.values().any(|s| !s.is_empty()) {
            // Quantile gauges are per-interval, so this snapshot's gauge
            // map necessarily differs from the plain gauge state — build
            // it fresh and leave the cache dirty.
            let mut gauges = self.gauges.clone();
            for (name, samples) in &self.histograms {
                if !samples.is_empty() {
                    gauges.insert(format!("{name}/p50"), samples.quantile(0.50));
                    gauges.insert(format!("{name}/p90"), samples.quantile(0.90));
                    gauges.insert(format!("{name}/p99"), samples.quantile(0.99));
                }
            }
            self.gauges_cache = None;
            Arc::new(gauges)
        } else {
            self.gauges_cache
                .get_or_insert_with(|| Arc::new(self.gauges.clone()))
                .clone()
        };
        self.histograms.clear();
        self.history.push(MetricsSnapshot {
            at,
            counters,
            gauges,
        });
        self.history.last().expect("just pushed")
    }

    /// The snapshots taken so far, in time order.
    #[must_use]
    pub fn history(&self) -> &[MetricsSnapshot] {
        &self.history
    }

    /// Consumes the registry, returning the snapshot time series.
    #[must_use]
    pub fn into_history(self) -> Vec<MetricsSnapshot> {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn sample_events() -> Vec<TraceRecord> {
        let t0 = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
        vec![
            TraceRecord {
                at: t0,
                event: Event::RequestAdmitted {
                    id: 7,
                    input_len: 755,
                    output_len: 200,
                },
            },
            TraceRecord {
                at: t0 + SimDuration::from_secs_f64(0.25),
                event: Event::SloBreach {
                    metric: SloMetric::Tpot,
                    observed_secs: 0.142,
                    budget_secs: 0.120,
                },
            },
            TraceRecord {
                at: t0 + SimDuration::from_secs_f64(0.5),
                event: Event::ControllerDecision {
                    kind: DecisionKind::Return,
                    action: "Return(cfg 3\u{2192}2)".to_string(),
                    verdict: SlackVerdict::Violating,
                    lag_secs: -0.01,
                    deviation: 1.3,
                    collision: false,
                    reason: "TPOT p50 0.142s > SLO_L 0.120s".to_string(),
                },
            },
        ]
    }

    #[test]
    fn disabled_tracer_skips_event_construction() {
        let tracer = Tracer::disabled();
        let mut constructed = false;
        tracer.emit(SimTime::ZERO, || {
            constructed = true;
            Event::ProfilerProgress {
                completed: 1,
                total: 2,
                division: 0,
                config: 0,
            }
        });
        assert!(!constructed, "closure must not run without a sink");
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn memory_sink_preserves_order_and_content() {
        let (tracer, sink) = Tracer::shared(MemorySink::new());
        for r in sample_events() {
            let event = r.event.clone();
            tracer.emit(r.at, || event);
        }
        let records = sink.lock().expect("sink lock").records().to_vec();
        assert_eq!(records, sample_events());
        assert!(tracer.is_enabled());
    }

    #[test]
    fn ordering_sink_sorts_each_flushed_segment_stably() {
        let progress = |completed| Event::ProfilerProgress {
            completed,
            total: 4,
            division: 0,
            config: 0,
        };
        let (tracer, sink) = Tracer::shared(OrderingSink::new(MemorySink::new()));
        // Out-of-order emission within a segment, with a timestamp tie.
        tracer.emit(SimTime::from_secs(2), || progress(1));
        tracer.emit(SimTime::from_secs(1), || progress(2));
        tracer.emit(SimTime::from_secs(2), || progress(3));
        tracer.flush();
        // A later segment may legitimately restart earlier (a new run).
        tracer.emit(SimTime::from_secs(0), || progress(4));
        tracer.flush();
        let seen: Vec<(u64, Event)> = sink
            .lock()
            .expect("sink lock")
            .inner()
            .records()
            .iter()
            .map(|r| (r.at.as_secs_f64() as u64, r.event.clone()))
            .collect();
        assert_eq!(
            seen,
            vec![
                (1, progress(2)),
                (2, progress(1)), // stable: ties keep emission order
                (2, progress(3)),
                (0, progress(4)),
            ]
        );
    }

    #[test]
    fn clones_share_one_sink() {
        let (a, sink) = Tracer::shared(MemorySink::new());
        let b = a.clone();
        a.emit(SimTime::ZERO, || Event::ProfilerProgress {
            completed: 1,
            total: 4,
            division: 0,
            config: 1,
        });
        b.emit(SimTime::ZERO, || Event::ProfilerProgress {
            completed: 2,
            total: 4,
            division: 0,
            config: 2,
        });
        assert_eq!(sink.lock().expect("sink lock").records().len(), 2);
    }

    #[test]
    fn jsonl_round_trips_losslessly() {
        let path =
            std::env::temp_dir().join(format!("aum-telemetry-test-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).expect("create trace file");
            for r in &sample_events() {
                sink.record(r);
            }
            assert_eq!(sink.lines_written(), 3);
        }
        let text = std::fs::read_to_string(&path).expect("read trace back");
        let parsed = parse_jsonl(&text).expect("every line parses");
        assert_eq!(parsed, sample_events());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn event_serde_round_trips_every_variant() {
        let variants = vec![
            Event::RequestAdmitted {
                id: 1,
                input_len: 2,
                output_len: 3,
            },
            Event::RequestFinished {
                id: 1,
                generated: 200,
                mean_tpot_secs: 0.05,
                ttft_secs: 0.71,
            },
            Event::IterationCompleted {
                phase: PhaseKind::Decode,
                batch: 16,
                tokens: 16,
                duration_secs: 0.03,
            },
            Event::SloBreach {
                metric: SloMetric::Ttft,
                observed_secs: 2.0,
                budget_secs: 1.0,
            },
            Event::FreqTransition {
                region: RegionClass::High,
                from_ghz: 2.6,
                to_ghz: 1.9,
            },
            Event::ThermalThrottle {
                region: RegionClass::Low,
                drop_ghz: 0.2,
            },
            Event::RdtReallocation {
                llc_ways_from: 4,
                llc_ways_to: 6,
                l2_ways_from: 8,
                l2_ways_to: 8,
                mem_bw_from: 0.2,
                mem_bw_to: 0.35,
            },
            Event::ControllerDecision {
                kind: DecisionKind::Switch,
                action: "Switch(div 1\u{2192}2)".to_string(),
                verdict: SlackVerdict::Meeting,
                lag_secs: 0.04,
                deviation: 2.4,
                collision: true,
                reason: "headroom \u{3b4}=2.4 > 2.0".to_string(),
            },
            Event::ProfilerProgress {
                completed: 5,
                total: 20,
                division: 1,
                config: 0,
            },
            Event::FaultInjected {
                kind: "ThermalRunaway".to_string(),
                detail: "influx 12.0 W-equivalent".to_string(),
            },
            Event::FaultRecovered {
                kind: "BandwidthDegrade".to_string(),
            },
            Event::FaultOutsideWindow {
                kind: "BeSurge".to_string(),
                at_secs: 400.0,
                duration_secs: 300.0,
            },
            Event::SensorRejected {
                sensor: "tpot_p50".to_string(),
                observed: 1.9,
                substituted: 0.062,
                reason: "outlier".to_string(),
            },
            Event::SafeModeTransition {
                from: ResilienceMode::Degraded,
                to: ResilienceMode::SafeMode,
                reason: "breach pressure 12/16 with cfg floor reached".to_string(),
            },
            Event::AttributionSample {
                region: crate::attrib::Region::AuLow,
                dt_secs: 0.5,
                time: {
                    let mut v = crate::attrib::CauseVec::zero();
                    v.add(crate::attrib::Cause::Compute, 0.3);
                    v.add(crate::attrib::Cause::MemDram, 0.2);
                    v
                },
                energy: {
                    let mut v = crate::attrib::CauseVec::zero();
                    v.add(crate::attrib::Cause::Compute, 40.0);
                    v
                },
            },
            Event::SpanOpen {
                id: crate::span::SpanId::derive(crate::span::SpanKind::RequestLifecycle, 7).0,
                parent: Some(
                    crate::span::SpanId::derive(crate::span::SpanKind::ControllerInterval, 2).0,
                ),
                kind: crate::span::SpanKind::RequestLifecycle,
                track: "aum/chatbot+specjbb".to_string(),
                label: "req 7".to_string(),
            },
            Event::SpanClose {
                id: crate::span::SpanId::derive(crate::span::SpanKind::RequestLifecycle, 7).0,
                kind: crate::span::SpanKind::RequestLifecycle,
                track: "aum/chatbot+specjbb".to_string(),
            },
            Event::SloTargets {
                ttft_secs: 3.0,
                tpot_secs: 0.12,
            },
            Event::NodeFault {
                node: 2,
                kind: "Straggler".to_string(),
                detail: "capacity /3.0".to_string(),
                active: true,
            },
            Event::NodeHealthTransition {
                node: 1,
                from: NodeHealth::Suspect,
                to: NodeHealth::Down,
                reason: "3 missed heartbeats".to_string(),
            },
            Event::RequestRedispatch {
                node: 1,
                count: 42,
                attempt: 2,
                backoff_epochs: 4,
            },
            Event::LoadShed {
                class: "best-effort".to_string(),
                count: 17,
                epoch: 12,
            },
            Event::NodeMetricsSnapshot {
                node: 0,
                label: "node0/GenA-SPR-HBM".to_string(),
                snapshot: MetricsSnapshot {
                    at: SimTime::from_secs(42),
                    counters: Arc::new([("completed".to_string(), 1234u64)].into_iter().collect()),
                    gauges: Arc::new(
                        [("epoch_latency_proxy/p50".to_string(), 0.31f64)]
                            .into_iter()
                            .collect(),
                    ),
                },
            },
            Event::SpanOpen {
                id: crate::span::SpanId::derive(crate::span::SpanKind::FleetEpoch, 3).0,
                parent: None,
                kind: crate::span::SpanKind::FleetEpoch,
                track: "fleet/failover/node-crash".to_string(),
                label: "epoch 3".to_string(),
            },
            Event::SpanOpen {
                id: crate::span::SpanId::derive(crate::span::SpanKind::NodeHealthEpisode, 1).0,
                parent: None,
                kind: crate::span::SpanKind::NodeHealthEpisode,
                track: "fleet/failover/node-crash/node1".to_string(),
                label: "Suspect".to_string(),
            },
            Event::SpanClose {
                id: crate::span::SpanId::derive(crate::span::SpanKind::RedispatchHop, 77).0,
                kind: crate::span::SpanKind::RedispatchHop,
                track: "fleet/failover/node-crash/node0".to_string(),
            },
            Event::WatchdogStall {
                intervals: 16,
                queue_len: 5,
                detail: "no serving progress for 8.0s".to_string(),
            },
        ];
        for event in variants {
            let json = serde_json::to_string(&event).expect("serialize");
            let back: Event = serde_json::from_str(&json).expect("parse back");
            assert_eq!(back, event, "round trip failed for {json}");
        }
    }

    #[test]
    fn registry_snapshots_form_a_time_series() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("requests_finished", 3);
        reg.gauge_set("power_w", 212.5);
        reg.observe("tpot_secs", 0.05);
        reg.observe("tpot_secs", 0.07);
        reg.observe("tpot_secs", 0.06);
        let snap = reg.snapshot(SimTime::from_secs(1)).clone();
        assert_eq!(snap.counters["requests_finished"], 3);
        assert_eq!(snap.gauges["power_w"], 212.5);
        assert!(snap.gauges["tpot_secs/p50"] >= 0.05);

        reg.counter_add("requests_finished", 2);
        let snap2 = reg.snapshot(SimTime::from_secs(2)).clone();
        assert_eq!(snap2.counters["requests_finished"], 5);
        // Histogram reset between intervals: no stale quantiles.
        assert!(!snap2.gauges.contains_key("tpot_secs/p50"));
        assert_eq!(reg.history().len(), 2);

        // Snapshots serialize (they ride on Outcome).
        let json = serde_json::to_string(&snap).expect("serialize snapshot");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn ordering_sink_keeps_emission_order_for_ties_across_flushes() {
        // Regression test for trace-diff determinism: duplicate timestamps
        // must forward in emission order, including when the tied records
        // span several flush boundaries (the per-sink sequence number is
        // monotonic for the sink's whole lifetime, not per segment).
        let progress = |completed| Event::ProfilerProgress {
            completed,
            total: 8,
            division: 0,
            config: 0,
        };
        let t = SimTime::from_secs(5);
        let (tracer, sink) = Tracer::shared(OrderingSink::new(MemorySink::new()));
        tracer.emit(t, || progress(1));
        tracer.emit(t, || progress(2));
        tracer.flush();
        tracer.emit(t, || progress(3));
        tracer.emit(t, || progress(4));
        tracer.flush();
        tracer.emit(t, || progress(5));
        tracer.flush();
        let seen: Vec<Event> = sink
            .lock()
            .expect("sink lock")
            .inner()
            .records()
            .iter()
            .map(|r| r.event.clone())
            .collect();
        assert_eq!(
            seen,
            (1..=5).map(progress).collect::<Vec<_>>(),
            "equal-SimTime records must keep emission order"
        );
    }

    #[test]
    fn quiet_snapshots_share_map_allocations() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("requests_finished", 3);
        reg.gauge_set("power_w", 212.5);
        let s1 = reg.snapshot(SimTime::from_secs(1)).clone();
        // Nothing changed: the next snapshot must reuse both allocations.
        let s2 = reg.snapshot(SimTime::from_secs(2)).clone();
        assert!(Arc::ptr_eq(&s1.counters, &s2.counters));
        assert!(Arc::ptr_eq(&s1.gauges, &s2.gauges));

        // A counter bump invalidates only the counter cache.
        reg.counter_add("requests_finished", 1);
        let s3 = reg.snapshot(SimTime::from_secs(3)).clone();
        assert!(!Arc::ptr_eq(&s2.counters, &s3.counters));
        assert!(Arc::ptr_eq(&s2.gauges, &s3.gauges));
        assert_eq!(s3.counters["requests_finished"], 4);

        // Histogram quantiles force a fresh gauge map for that interval
        // only; the cache repopulates from the plain gauges afterwards.
        reg.observe("tpot_secs", 0.05);
        let s4 = reg.snapshot(SimTime::from_secs(4)).clone();
        assert!(s4.gauges.contains_key("tpot_secs/p50"));
        let s5 = reg.snapshot(SimTime::from_secs(5)).clone();
        assert!(!s5.gauges.contains_key("tpot_secs/p50"));
        assert!(!Arc::ptr_eq(&s4.gauges, &s5.gauges));
        assert!(Arc::ptr_eq(&s4.counters, &s5.counters));
    }
}
