//! Simulation time types.
//!
//! All simulated experiments run on a virtual clock. Time is kept in integer
//! nanoseconds so that event ordering is exact and runs are reproducible
//! bit-for-bit; floating-point seconds are only produced at the reporting
//! boundary.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use aum_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_nanos(), 250_000_000);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use aum_sim::time::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimTime requires finite non-negative seconds, got {s}"
        );
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs are clamped to zero, which
    /// keeps model arithmetic (where a slack computation may go negative)
    /// well-defined.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor, saturating at the
    /// representable maximum.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
    }

    #[test]
    fn float_seconds_round_to_nanos() {
        let t = SimTime::from_secs_f64(0.123_456_789);
        assert_eq!(t.as_nanos(), 123_456_789);
        let d = SimDuration::from_secs_f64(1e-9);
        assert_eq!(d.as_nanos(), 1);
    }

    #[test]
    fn negative_duration_clamps_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(
            SimTime::from_millis(1).saturating_since(SimTime::from_millis(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(7)),
            Some(SimTime::from_nanos(7))
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100).mul_f64(2.5);
        assert_eq!(d, SimDuration::from_millis(250));
        assert_eq!(
            SimDuration::from_millis(100).mul_f64(-1.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_div_and_mul() {
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(10) / 2,
            SimDuration::from_millis(5)
        );
    }
}
