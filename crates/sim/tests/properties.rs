//! Property-based tests of the simulation kernel.

use proptest::prelude::*;

use aum_sim::attrib::{
    Cause, IntervalLedger, Ledger, Region, RegionSample, WorkFractions, EPSILON,
};
use aum_sim::event::EventQueue;
use aum_sim::hist::{LogHistogram, SUB_BUCKETS};
use aum_sim::rng::DetRng;
use aum_sim::stats::{Histogram, Samples, Summary};
use aum_sim::time::{SimDuration, SimTime};

/// An arbitrary (possibly degenerate) work split — negatives and all-zero
/// vectors included, which `RegionSample` construction must normalize.
fn work_fractions() -> impl Strategy<Value = WorkFractions> {
    (
        -0.2f64..2.0,
        -0.2f64..1.0,
        -0.2f64..1.0,
        -0.2f64..1.0,
        -0.2f64..2.0,
        -0.2f64..1.0,
    )
        .prop_map(|(compute, l1, l2, llc, dram, contention)| WorkFractions {
            compute,
            l1,
            l2,
            llc,
            dram,
            contention,
        })
}

/// An arbitrary region sample with physically-plausible ranges plus edge
/// cases (zero busy, thermal drop exceeding the license gap, shed on/off).
fn region_sample(region: Region) -> impl Strategy<Value = RegionSample> {
    (
        0.0f64..=1.0,
        0.4f64..4.0,
        0.4f64..4.0,
        0.0f64..2.0,
        work_fractions(),
        0.0f64..500.0,
        0.0f64..2000.0,
        any::<bool>(),
    )
        .prop_map(
            move |(busy_frac, freq_ghz, unlicensed_ghz, thermal_drop_ghz, work, s, d, shed)| {
                RegionSample {
                    region,
                    busy_frac,
                    freq_ghz,
                    unlicensed_ghz,
                    thermal_drop_ghz,
                    work,
                    static_j: s,
                    dynamic_j: d,
                    shed,
                }
            },
        )
}

/// A full interval's worth of samples, one per region.
fn interval_samples() -> impl Strategy<Value = Vec<RegionSample>> {
    (
        region_sample(Region::AuHigh),
        region_sample(Region::AuLow),
        region_sample(Region::Shared),
        region_sample(Region::Uncore),
    )
        .prop_map(|(a, b, c, d)| vec![a, b, c, d])
}

proptest! {
    #[test]
    fn quantiles_are_bounded_and_monotone(
        values in prop::collection::vec(-1e9f64..1e9, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let s: Samples = values.iter().copied().collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for q in sorted_qs {
            let v = s.quantile(q);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            prop_assert!(v >= last - 1e-9, "quantiles must be monotone in q");
            last = v;
        }
    }

    #[test]
    fn summary_merge_matches_sequential(values in prop::collection::vec(-1e6f64..1e6, 2..100), split in 1usize..99) {
        let split = split.min(values.len() - 1);
        let mut all = Summary::new();
        let mut left = Summary::new();
        let mut right = Summary::new();
        for (i, &v) in values.iter().enumerate() {
            all.record(v);
            if i < split { left.record(v) } else { right.record(v) }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!((left.variance() - all.variance()).abs() <= 1e-4 * (1.0 + all.variance().abs()));
        prop_assert_eq!(left.min().to_bits(), all.min().to_bits());
        prop_assert_eq!(left.max().to_bits(), all.max().to_bits());
    }

    #[test]
    fn cdf_is_a_distribution_function(values in prop::collection::vec(0.0f64..1e6, 1..300), points in 1usize..40) {
        let s: Samples = values.iter().copied().collect();
        let cdf = s.cdf(points);
        prop_assert_eq!(cdf.len(), points);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Every CDF point is consistent with fraction_at_most.
        for &(v, p) in &cdf {
            prop_assert!(s.fraction_at_most(v) >= p - 1e-9);
        }
    }

    #[test]
    fn histogram_conserves_observations(
        values in prop::collection::vec(-100.0f64..200.0, 0..300),
        buckets in 1usize..50,
    ) {
        let mut h = Histogram::new(0.0, 100.0, buckets);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let in_range = values.iter().filter(|&&v| (0.0..100.0).contains(&v)).count() as u64;
        prop_assert_eq!(h.counts().iter().sum::<u64>(), in_range);
    }

    #[test]
    fn event_queue_pops_sorted_stable(events in prop::collection::vec((0u64..1_000_000, 0u32..1000), 0..200)) {
        let mut q = EventQueue::new();
        for (i, &(t, tag)) in events.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (tag, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, (_, i))) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time order");
                if t == lt {
                    prop_assert!(i > li, "insertion order on ties");
                }
            }
            last = Some((t, i));
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn cancelled_events_never_fire(n in 1usize..100, cancel_mask in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..n).map(|i| q.schedule(SimTime::from_micros(i as u64 % 7), i)).collect();
        let mut expected = n;
        for (id, &cancel) in ids.iter().zip(cancel_mask.iter().cycle()) {
            if cancel {
                prop_assert!(q.cancel(*id));
                expected -= 1;
            }
        }
        let mut fired = 0;
        while q.pop().is_some() {
            fired += 1;
        }
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        let later = t + d;
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(later.saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(later), SimDuration::ZERO);
    }

    #[test]
    fn exponential_draws_are_positive(seed in any::<u64>(), mean in 1e-6f64..1e6) {
        let mut rng = DetRng::from_seed(seed);
        for _ in 0..50 {
            let v = rng.exponential(mean);
            prop_assert!(v >= 0.0 && v.is_finite());
        }
    }

    #[test]
    fn lognormal_is_positive_and_finite(seed in any::<u64>(), mean in 0.1f64..1e5, cv in 0.0f64..3.0) {
        let mut rng = DetRng::from_seed(seed);
        for _ in 0..50 {
            let v = rng.lognormal_mean_cv(mean, cv);
            prop_assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn labelled_streams_are_reproducible(seed in any::<u64>(), label in "[a-z]{1,16}") {
        let mut a = DetRng::from_seed(seed).stream(&label);
        let mut b = DetRng::from_seed(seed).stream(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
        }
    }

    #[test]
    fn ledger_conserves_time_and_energy_for_any_samples(
        intervals in prop::collection::vec((interval_samples(), 1e-3f64..10.0), 1..20),
    ) {
        let mut ledger = Ledger::new();
        let mut at = SimTime::ZERO;
        for (samples, dt_secs) in &intervals {
            let energy_j: f64 = samples.iter().map(|s| s.static_j + s.dynamic_j).sum();
            ledger.intervals.push(IntervalLedger::build(at, *dt_secs, energy_j, samples));
            at += SimDuration::from_secs_f64(*dt_secs);
        }
        // The two hard invariants hold for arbitrary inputs: attributed
        // time sums to wall time and attributed joules to modeled energy,
        // within the relative epsilon, with no negative cell.
        prop_assert!(ledger.verify(EPSILON).is_ok());
        for iv in &ledger.intervals {
            for region in &iv.regions {
                prop_assert!((region.time.sum() - iv.dt_secs).abs() <= EPSILON * iv.dt_secs.max(1.0));
                for (cause, v) in region.time.iter().chain(region.energy.iter()) {
                    prop_assert!(v >= 0.0, "negative {cause} attribution: {v}");
                }
            }
            prop_assert!(
                (iv.attributed_energy() - iv.energy_j).abs() <= EPSILON * iv.energy_j.abs().max(1.0)
            );
        }
    }

    #[test]
    fn ledger_shed_labelling_and_serde_round_trip(
        samples in interval_samples(),
        dt_secs in 1e-3f64..5.0,
    ) {
        let energy_j: f64 = samples.iter().map(|s| s.static_j + s.dynamic_j).sum();
        let mut ledger = Ledger::new();
        ledger.intervals.push(IntervalLedger::build(SimTime::ZERO, dt_secs, energy_j, &samples));
        // Off time lands on exactly the cause the sample's shed flag names.
        let iv = &ledger.intervals[0];
        for (sample, region) in samples.iter().zip(iv.regions.iter()) {
            let (labelled, opposite) = if sample.shed {
                (Cause::SafeModeShed, Cause::Idle)
            } else {
                (Cause::Idle, Cause::SafeModeShed)
            };
            let off = (1.0 - sample.busy_frac) * dt_secs;
            prop_assert!(region.time.get(labelled) >= off - EPSILON * dt_secs.max(1.0) - 1e-9);
            prop_assert!(region.time.get(opposite) <= EPSILON * dt_secs.max(1.0) + 1e-9);
        }
        // Serialization preserves the ledger bit-for-bit semantics.
        let json = serde_json::to_string(&ledger).expect("ledger serializes");
        let back: Ledger = serde_json::from_str(&json).expect("ledger deserializes");
        prop_assert!(back.verify(EPSILON).is_ok());
        prop_assert!((back.wall_secs() - ledger.wall_secs()).abs() < 1e-12);
        prop_assert!((back.energy_j() - ledger.energy_j()).abs() < 1e-12);
    }

    // Both `LogHistogram::quantile` and `Samples::quantile` map q to rank
    // q * (n - 1); the sample counts below keep that rank integral for
    // p50/p90/p99, so the exact quantile is a single order statistic that
    // lies inside the bucket the histogram interpolates in — the estimate
    // must agree within one bucket's relative width (1/SUB_BUCKETS).
    #[test]
    fn hist_quantiles_track_exact_on_lognormal(
        seed in any::<u64>(),
        mean in 0.01f64..5.0,
        cv in 0.1f64..1.5,
    ) {
        let mut rng = DetRng::from_seed(seed).stream("hist-lognormal");
        let values: Vec<f64> = (0..301)
            .map(|_| rng.lognormal_mean_cv(mean, cv).clamp(1e-4, 1000.0))
            .collect();
        let hist: LogHistogram = values.iter().copied().collect();
        let exact: Samples = values.iter().copied().collect();
        for q in [0.5, 0.9, 0.99] {
            let truth = exact.quantile(q);
            let est = hist.quantile(q);
            prop_assert!(
                (est - truth).abs() <= truth / SUB_BUCKETS as f64 + 1e-12,
                "p{} off by more than a bucket: est {est}, exact {truth}",
                q * 100.0
            );
        }
    }

    #[test]
    fn hist_quantiles_track_exact_on_bimodal(
        seed in any::<u64>(),
        lo_mean in 0.002f64..0.02,
        hi_mean in 0.5f64..5.0,
        p_lo in 0.1f64..0.9,
    ) {
        let mut rng = DetRng::from_seed(seed).stream("hist-bimodal");
        let values: Vec<f64> = (0..201)
            .map(|_| {
                let mean = if rng.chance(p_lo) { lo_mean } else { hi_mean };
                rng.lognormal_mean_cv(mean, 0.3).clamp(1e-4, 1000.0)
            })
            .collect();
        let hist: LogHistogram = values.iter().copied().collect();
        let exact: Samples = values.iter().copied().collect();
        for q in [0.5, 0.9, 0.99] {
            let truth = exact.quantile(q);
            let est = hist.quantile(q);
            prop_assert!(
                (est - truth).abs() <= truth / SUB_BUCKETS as f64 + 1e-12,
                "p{} off by more than a bucket: est {est}, exact {truth}",
                q * 100.0
            );
        }
    }

    #[test]
    fn hist_merge_equals_histogramming_the_union(
        values in prop::collection::vec(1e-7f64..1e5, 2..400),
        split in 0usize..400,
    ) {
        // The value range deliberately straddles both ends of the bucketed
        // range so the under/overflow counters are exercised too.
        let split = split.min(values.len());
        let a: LogHistogram = values[..split].iter().copied().collect();
        let b: LogHistogram = values[split..].iter().copied().collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let union: LogHistogram = values.iter().copied().collect();
        prop_assert_eq!(
            merged.nonzero_buckets().collect::<Vec<_>>(),
            union.nonzero_buckets().collect::<Vec<_>>()
        );
        prop_assert_eq!(merged.count(), union.count());
        prop_assert_eq!(merged.underflow(), union.underflow());
        prop_assert_eq!(merged.overflow(), union.overflow());
        prop_assert!(
            (merged.sum() - union.sum()).abs() <= 1e-9 * union.sum().abs().max(1.0)
        );
        // Quantiles depend only on bucket counts, so they match bit-exactly.
        for i in 0..=10 {
            let q = f64::from(i) / 10.0;
            prop_assert_eq!(merged.quantile(q).to_bits(), union.quantile(q).to_bits());
        }
    }
}

proptest! {
    /// The flight-recorder ring is a pure function of the record stream:
    /// after any sequence of records it holds exactly the newest
    /// `min(len, capacity)` of them, in arrival order, and has evicted
    /// precisely the rest.
    #[test]
    fn ring_sink_retains_exactly_the_newest_capacity_records(
        capacity in 1usize..64,
        stream in prop::collection::vec((0u64..10_000u64, 0u64..1_000u64), 0..300),
    ) {
        use aum_sim::flight::RingSink;
        use aum_sim::telemetry::{Event, TraceRecord, TraceSink};

        let records: Vec<TraceRecord> = stream
            .iter()
            .map(|&(at_ms, id)| TraceRecord {
                at: SimTime::from_secs_f64(at_ms as f64 / 1e3),
                event: Event::RequestAdmitted { id, input_len: 16, output_len: 4 },
            })
            .collect();
        let mut ring = RingSink::new(capacity);
        for r in &records {
            ring.record(r);
        }
        let kept = records.len().min(capacity);
        prop_assert_eq!(ring.len(), kept);
        prop_assert_eq!(ring.evicted(), (records.len() - kept) as u64);
        prop_assert_eq!(ring.to_vec(), records[records.len() - kept..].to_vec());
    }
}
