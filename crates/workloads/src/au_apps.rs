//! AU-accelerated datacenter applications beyond LLM serving (Fig 4).
//!
//! The paper demonstrates AU gains on three AI workloads: Faiss vector
//! search, a singing-voice vocoder, and DeepFM recommendation, swept over
//! dimension `d`, cores `c` and batch size `bs`, normalized to AU-disabled
//! GenC performance. Each app is modeled by its dominant kernel shape; the
//! AU speedup is the cost-model ratio between an AU-disabled run (scalar
//! pipes only) and the best-AU run.

use serde::{Deserialize, Serialize};

use aum_au::gemm::{gemm_time, pick_unit, ExecContext, GemmShape};
use aum_au::unit::{AuKind, AuSpec, Precision};
use aum_platform::spec::PlatformSpec;

/// The Fig 4 applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuApp {
    /// Faiss inner-product vector search over a quantizer list.
    Faiss,
    /// Neural vocoder (frame-level dense layers).
    Vocoder,
    /// DeepFM CTR recommendation (embedding + FM + deep layers).
    DeepFm,
}

impl AuApp {
    /// All Fig 4 applications.
    pub const ALL: [AuApp; 3] = [AuApp::Faiss, AuApp::Vocoder, AuApp::DeepFm];

    /// Dominant kernel of the app for dimension `d` and batch `bs`.
    #[must_use]
    pub fn kernel(self, d: usize, bs: usize) -> GemmShape {
        match self {
            // Queries (bs) against a coarse quantizer / PQ codebook of 4096
            // centroids of dimensionality d.
            AuApp::Faiss => GemmShape::new(bs, d, 4096),
            // Frame-parallel dense layer: 64 frames per utterance, d→d.
            AuApp::Vocoder => GemmShape::new(bs * 64, d, d),
            // Deep tower: concatenated field embeddings (26 fields) to a
            // hidden layer of width d.
            AuApp::DeepFm => GemmShape::new(bs, 26 * d, d),
        }
    }
}

impl core::fmt::Display for AuApp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuApp::Faiss => write!(f, "Faiss"),
            AuApp::Vocoder => write!(f, "Vocoder"),
            AuApp::DeepFm => write!(f, "DeepFM"),
        }
    }
}

/// Speedup of the AU-enabled run over the AU-disabled (scalar) run of one
/// app on `spec` — the quantity Fig 4 plots.
///
/// # Examples
///
/// ```
/// use aum_platform::spec::PlatformSpec;
/// use aum_workloads::au_apps::{au_acceleration, AuApp};
///
/// let speedup = au_acceleration(&PlatformSpec::gen_c(), AuApp::Faiss, 512, 8, 64);
/// assert!(speedup > 1.0);
/// ```
#[must_use]
pub fn au_acceleration(spec: &PlatformSpec, app: AuApp, d: usize, cores: usize, bs: usize) -> f64 {
    let shape = app.kernel(d, bs);
    let scalar = AuSpec::for_platform(spec, AuKind::Scalar);
    let amx = AuSpec::for_platform(spec, AuKind::Amx);
    let avx = AuSpec::for_platform(spec, AuKind::Avx512);
    let freq = spec.allcore_turbo.value();
    let ctx = ExecContext::new(cores.max(1), freq, spec.mem_bw);
    let baseline = gemm_time(shape, Precision::Bf16, &scalar, &ctx);
    // AU run benefits from the AU license frequency instead of turbo.
    let au_ctx = ExecContext::new(cores.max(1), spec.base_freq.value(), spec.mem_bw);
    let (_, accelerated) = pick_unit(shape, Precision::Bf16, &amx, &avx, &au_ctx);
    baseline.time.as_secs_f64() / accelerated.time.as_secs_f64().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_c() -> PlatformSpec {
        PlatformSpec::gen_c()
    }

    #[test]
    fn all_apps_accelerate() {
        for app in AuApp::ALL {
            let s = au_acceleration(&gen_c(), app, 512, 8, 64);
            assert!(s > 1.5, "{app}: speedup {s}");
        }
    }

    #[test]
    fn speedup_grows_with_batch_for_faiss() {
        // Bigger batches fill AMX tiles: Fig 4 shows larger gains at larger
        // batch sizes.
        let small = au_acceleration(&gen_c(), AuApp::Faiss, 512, 8, 1);
        let large = au_acceleration(&gen_c(), AuApp::Faiss, 512, 8, 64);
        assert!(
            large > small,
            "batch 64 ({large}) should beat batch 1 ({small})"
        );
    }

    #[test]
    fn speedups_are_bounded_by_unit_ratio() {
        // AMX ops/cycle ≈ 1024 vs scalar 4, but memory bounds and fill
        // efficiency keep realistic speedups within ~100x.
        for app in AuApp::ALL {
            for bs in [1, 16, 64] {
                let s = au_acceleration(&gen_c(), app, 256, 8, bs);
                assert!(s < 150.0, "{app} bs={bs}: speedup {s} too good to be true");
            }
        }
    }

    #[test]
    fn dimension_sweep_is_monotone_for_vocoder() {
        let small = au_acceleration(&gen_c(), AuApp::Vocoder, 128, 8, 8);
        let large = au_acceleration(&gen_c(), AuApp::Vocoder, 1024, 8, 8);
        assert!(
            large >= small * 0.8,
            "speedup should not collapse with dimension"
        );
    }

    #[test]
    fn kernels_have_sane_shapes() {
        assert_eq!(AuApp::Faiss.kernel(512, 8), GemmShape::new(8, 512, 4096));
        assert_eq!(AuApp::Vocoder.kernel(256, 2), GemmShape::new(128, 256, 256));
        assert_eq!(
            AuApp::DeepFm.kernel(128, 4),
            GemmShape::new(4, 26 * 128, 128)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", AuApp::DeepFm), "DeepFM");
    }
}
