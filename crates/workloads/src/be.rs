//! Best-effort co-runner workload models.
//!
//! The paper shares AU-enabled CPUs with three representative best-effort
//! applications (§V-A):
//!
//! - **Compute** — sysbench prime division: compute-intensive, frequency-
//!   proportional, cache/bandwidth-insensitive, power-hungry;
//! - **OLAP** — TPC-H joint queries: memory-intensive, bandwidth-dominated,
//!   strong LLC affinity;
//! - **SPECjbb** — Java server transactions: complex mixed behaviour with
//!   rapidly fluctuating resource use (§VII-D).
//!
//! Each profile carries the interference fingerprints the platform model
//! consumes (activity class for power, miss-rate curves for CAT, bandwidth
//! demand for MBA, SMT pollution) plus an analytic throughput model. Unit
//! prices (`γ`) follow §VII-A1: 1e-3 / 1e-6 / 3e-5 per query for
//! Compute / OLAP / SPECjbb.

use serde::{Deserialize, Serialize};

use aum_platform::cache::{CacheProfile, MissRateCurve};
use aum_platform::power::ActivityClass;
use aum_platform::smt::SmtCorunnerProfile;
use aum_platform::spec::PlatformSpec;
use aum_platform::units::GbPerSec;

/// The co-runner selection of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeKind {
    /// sysbench prime-division loops.
    Compute,
    /// TPC-H analytical queries.
    Olap,
    /// SPECjbb 2015 transactions.
    SpecJbb,
}

impl BeKind {
    /// All co-runners in the paper's order.
    pub const ALL: [BeKind; 3] = [BeKind::Compute, BeKind::Olap, BeKind::SpecJbb];
}

impl core::fmt::Display for BeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BeKind::Compute => write!(f, "Compute"),
            BeKind::Olap => write!(f, "OLAP"),
            BeKind::SpecJbb => write!(f, "SPECjbb"),
        }
    }
}

/// Full workload description of a best-effort application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeProfile {
    /// Which application this is.
    pub kind: BeKind,
    /// Power-model instruction-mix class.
    pub activity: ActivityClass,
    /// Cache sensitivity (CAT response).
    pub cache: CacheProfile,
    /// SMT sibling fingerprint.
    pub smt: SmtCorunnerProfile,
    /// DRAM bandwidth demand per active core at full speed.
    pub bw_demand_per_core: GbPerSec,
    /// Throughput units per core-second at the reference frequency.
    pub base_rate_per_core: f64,
    /// Exponent of frequency in the throughput model (1 = compute bound).
    pub freq_sensitivity: f64,
    /// Weight of the memory phase in end-to-end time, `[0, 1]`.
    pub memory_weight: f64,
    /// Price `γ` of one throughput unit for the efficiency objective.
    pub unit_price: f64,
}

/// Reference frequency the base rates are quoted at (GenA all-core turbo).
pub const REF_FREQ_GHZ: f64 = 3.2;

impl BeProfile {
    /// The calibrated profile of a co-runner.
    #[must_use]
    pub fn of(kind: BeKind) -> Self {
        match kind {
            BeKind::Compute => BeProfile {
                kind,
                activity: ActivityClass::ScalarCompute,
                cache: CacheProfile::new(
                    MissRateCurve::streaming(0.02),
                    MissRateCurve::new(0.01, 0.10, 0.5),
                    0.05,
                ),
                smt: SmtCorunnerProfile::new(0.8, 0.10, 0.10, 0.30),
                bw_demand_per_core: GbPerSec(0.4),
                base_rate_per_core: 1200.0, // sysbench events/s/core
                freq_sensitivity: 1.0,
                memory_weight: 0.05,
                unit_price: 1e-3,
            },
            BeKind::Olap => BeProfile {
                kind,
                activity: ActivityClass::MemoryBound,
                cache: CacheProfile::new(
                    MissRateCurve::new(0.30, 0.85, 45.0),
                    MissRateCurve::new(0.25, 0.60, 1.0),
                    0.55,
                ),
                smt: SmtCorunnerProfile::new(0.30, 0.95, 0.30, 0.90),
                bw_demand_per_core: GbPerSec(2.6),
                base_rate_per_core: 8.0e5, // scanned rows/s/core
                freq_sensitivity: 0.25,
                memory_weight: 0.80,
                unit_price: 1e-6,
            },
            BeKind::SpecJbb => BeProfile {
                kind,
                activity: ActivityClass::Mixed,
                cache: CacheProfile::new(
                    MissRateCurve::new(0.15, 0.80, 60.0),
                    MissRateCurve::new(0.10, 0.55, 1.2),
                    0.60,
                ),
                smt: SmtCorunnerProfile::new(0.50, 0.12, 0.50, 0.60),
                bw_demand_per_core: GbPerSec(1.1),
                base_rate_per_core: 3.3e4, // jOPS/core
                freq_sensitivity: 0.70,
                memory_weight: 0.40,
                unit_price: 3e-5,
            },
        }
    }

    /// Instantaneous throughput under the given allocation.
    ///
    /// - `cores`: cores running the application;
    /// - `freq_ghz`: their frequency;
    /// - `llc_ways`/`l2_ways`: CAT allocation;
    /// - `bw_slowdown`: memory-phase inflation from the bandwidth pool (≥1);
    /// - `smt_slowdown`: BE-side SMT penalty (≥1, 1 when not hyperthreaded).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // mirrors the knobs RDT exposes
    pub fn throughput(
        &self,
        spec: &PlatformSpec,
        cores: usize,
        freq_ghz: f64,
        llc_ways: u32,
        l2_ways: u32,
        bw_slowdown: f64,
        smt_slowdown: f64,
    ) -> f64 {
        if cores == 0 || freq_ghz <= 0.0 {
            return 0.0;
        }
        let freq_factor = (freq_ghz / REF_FREQ_GHZ).powf(self.freq_sensitivity);
        let cache_factor = self.cache.performance_factor(spec, llc_ways, l2_ways);
        let bw_factor =
            1.0 / ((1.0 - self.memory_weight) + self.memory_weight * bw_slowdown.max(1.0));
        self.base_rate_per_core * cores as f64 * freq_factor * cache_factor * bw_factor
            / smt_slowdown.max(1.0)
    }

    /// Raw DRAM bandwidth demand at the given core count, amplified by a
    /// shrunken LLC partition.
    #[must_use]
    pub fn bw_demand(&self, spec: &PlatformSpec, cores: usize, llc_ways: u32) -> GbPerSec {
        let amp = self.cache.bandwidth_amplification(spec, llc_ways);
        GbPerSec(self.bw_demand_per_core.value() * cores as f64 * amp)
    }

    /// SPECjbb's transaction mix fluctuates rapidly (§VII-D); the other two
    /// are steady. Returns a deterministic demand multiplier at time `t`.
    #[must_use]
    pub fn fluctuation(&self, t_secs: f64) -> f64 {
        self.demand_multiplier(t_secs, 1.0)
    }

    /// Demand multiplier at time `t` under a load surge of factor `surge`
    /// (`1.0` = nominal; the `BeSurge` fault raises it). The surge scales
    /// the whole demand — duty cycle and bandwidth appetite — while the
    /// app's intrinsic fluctuation rides on top, so a surged SPECjbb still
    /// swings. Results stay positive and are clamped to a physical ceiling
    /// (a core cannot exceed 100% duty by more than the queue-burst factor
    /// the profiles are calibrated for).
    #[must_use]
    pub fn demand_multiplier(&self, t_secs: f64, surge: f64) -> f64 {
        let base = match self.kind {
            BeKind::SpecJbb => 1.0 + 0.35 * (t_secs * 0.7).sin() + 0.15 * (t_secs * 2.9).cos(),
            _ => 1.0,
        };
        (base * surge.max(0.0)).clamp(0.0, 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PlatformSpec {
        PlatformSpec::gen_a()
    }

    #[test]
    fn compute_scales_linearly_with_frequency() {
        let p = BeProfile::of(BeKind::Compute);
        let s = spec();
        let slow = p.throughput(&s, 16, 1.6, 16, 16, 1.0, 1.0);
        let fast = p.throughput(&s, 16, 3.2, 16, 16, 1.0, 1.0);
        assert!((fast / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn olap_is_frequency_insensitive() {
        let p = BeProfile::of(BeKind::Olap);
        let s = spec();
        let slow = p.throughput(&s, 16, 1.6, 16, 16, 1.0, 1.0);
        let fast = p.throughput(&s, 16, 3.2, 16, 16, 1.0, 1.0);
        assert!(
            fast / slow < 1.25,
            "memory-bound app barely cares about frequency"
        );
    }

    #[test]
    fn olap_suffers_from_bandwidth_starvation() {
        let p = BeProfile::of(BeKind::Olap);
        let s = spec();
        let free = p.throughput(&s, 16, 3.2, 16, 16, 1.0, 1.0);
        let starved = p.throughput(&s, 16, 3.2, 16, 16, 3.0, 1.0);
        assert!(starved < 0.45 * free);
        let c = BeProfile::of(BeKind::Compute);
        let c_free = c.throughput(&s, 16, 3.2, 16, 16, 1.0, 1.0);
        let c_starved = c.throughput(&s, 16, 3.2, 16, 16, 3.0, 1.0);
        assert!(c_starved > 0.85 * c_free, "compute ignores bandwidth");
    }

    #[test]
    fn cache_ways_matter_for_jbb_not_compute() {
        let s = spec();
        let jbb = BeProfile::of(BeKind::SpecJbb);
        let jbb_ratio = jbb.throughput(&s, 16, 3.2, 2, 16, 1.0, 1.0)
            / jbb.throughput(&s, 16, 3.2, 16, 16, 1.0, 1.0);
        assert!(
            jbb_ratio < 0.85,
            "SPECjbb loses with 2 ways, got {jbb_ratio}"
        );
        let comp = BeProfile::of(BeKind::Compute);
        let comp_ratio = comp.throughput(&s, 16, 3.2, 2, 16, 1.0, 1.0)
            / comp.throughput(&s, 16, 3.2, 16, 16, 1.0, 1.0);
        assert!(comp_ratio > 0.97, "Compute ignores LLC, got {comp_ratio}");
    }

    #[test]
    fn throughput_scales_with_cores() {
        let p = BeProfile::of(BeKind::SpecJbb);
        let s = spec();
        let one = p.throughput(&s, 8, 3.2, 8, 8, 1.0, 1.0);
        let two = p.throughput(&s, 16, 3.2, 8, 8, 1.0, 1.0);
        assert!((two / one - 2.0).abs() < 1e-9);
        assert_eq!(p.throughput(&s, 0, 3.2, 8, 8, 1.0, 1.0), 0.0);
    }

    #[test]
    fn bw_demand_amplifies_with_small_partition() {
        let p = BeProfile::of(BeKind::Olap);
        let s = spec();
        let full = p.bw_demand(&s, 24, 16);
        let tiny = p.bw_demand(&s, 24, 2);
        assert!(tiny.value() > full.value() * 1.2);
        // 24 OLAP cores demand a large share of GenA's 233.8 GB/s pool.
        assert!(full.value() > 50.0);
    }

    #[test]
    fn price_weighted_rates_are_comparable() {
        // §VII-A1: prices are set from CPU time per query, so price×rate
        // per core should be the same order of magnitude across apps.
        for kind in BeKind::ALL {
            let p = BeProfile::of(kind);
            let v = p.base_rate_per_core * p.unit_price;
            assert!((0.5..=1.5).contains(&v), "{kind}: price×rate {v}");
        }
    }

    #[test]
    fn only_jbb_fluctuates() {
        let jbb = BeProfile::of(BeKind::SpecJbb);
        let olap = BeProfile::of(BeKind::Olap);
        let mut spread = (f64::INFINITY, f64::NEG_INFINITY);
        for t in 0..100 {
            let v = jbb.fluctuation(t as f64 * 0.37);
            spread = (spread.0.min(v), spread.1.max(v));
            assert_eq!(olap.fluctuation(t as f64), 1.0);
        }
        assert!(
            spread.1 - spread.0 > 0.4,
            "jbb should swing, got {spread:?}"
        );
        assert!(spread.0 > 0.3, "fluctuation stays positive");
    }

    #[test]
    fn surge_scales_demand_and_is_clamped() {
        let jbb = BeProfile::of(BeKind::SpecJbb);
        let olap = BeProfile::of(BeKind::Olap);
        assert_eq!(olap.demand_multiplier(3.0, 1.0), 1.0);
        assert_eq!(olap.demand_multiplier(3.0, 2.5), 2.5);
        assert_eq!(olap.demand_multiplier(3.0, 100.0), 4.0, "ceiling");
        assert_eq!(olap.demand_multiplier(3.0, -1.0), 0.0, "no negatives");
        let t = 1.7;
        let nominal = jbb.demand_multiplier(t, 1.0);
        let surged = jbb.demand_multiplier(t, 1.8);
        assert!((surged - (nominal * 1.8).clamp(0.0, 4.0)).abs() < 1e-12);
    }

    #[test]
    fn smt_fingerprints_match_fig9_ordering() {
        let olap = BeProfile::of(BeKind::Olap).smt;
        let compute = BeProfile::of(BeKind::Compute).smt;
        assert!(olap.cache_pollution > compute.cache_pollution);
        assert!(compute.port_pressure > olap.port_pressure);
    }
}
