//! GPU reference point for the Fig 5 comparison.
//!
//! The paper compares exclusive AU-enabled CPUs against a single-GPU
//! server running FlexGen on an NVIDIA A100 (§III-B). We reproduce the
//! comparison with a fixed reference derived from the paper's own anchors:
//!
//! - GenA absolute numbers: 188 tokens/s, 270 W, $7200;
//! - GPU is **2.1×** better performance-per-watt than GenA;
//! - GPU performance-per-cost is **worse than high-end CPU platforms**
//!   (GenC) but ≈1.3× better than GenA (§VII-E's "1.3× perf-per-dollar of
//!   GPU").
//!
//! Solving those ratios with a 400 W A100 board+host share gives
//! ≈585 tokens/s at ≈$17k server share, which is consistent with published
//! FlexGen llama-7B numbers.

use serde::{Deserialize, Serialize};

/// A fixed accelerator reference point (throughput, power, cost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuReference {
    /// Marketing name.
    pub name: &'static str,
    /// llama2-7b serving throughput, tokens/s.
    pub tokens_per_sec: f64,
    /// Board + amortized host power, W.
    pub power_w: f64,
    /// Amortized acquisition cost, USD.
    pub cost_usd: f64,
}

impl GpuReference {
    /// The A100/FlexGen reference of Fig 5.
    #[must_use]
    pub fn a100_flexgen() -> Self {
        GpuReference {
            name: "A100 (FlexGen)",
            tokens_per_sec: 585.0,
            power_w: 400.0,
            cost_usd: 17000.0,
        }
    }

    /// Performance per watt, tokens/s/W.
    #[must_use]
    pub fn perf_per_watt(&self) -> f64 {
        self.tokens_per_sec / self.power_w
    }

    /// Performance per dollar, tokens/s/$.
    #[must_use]
    pub fn perf_per_cost(&self) -> f64 {
        self.tokens_per_sec / self.cost_usd
    }
}

/// The paper's GenA anchor measurements (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuAnchor {
    /// Serving throughput, tokens/s.
    pub tokens_per_sec: f64,
    /// Package power, W.
    pub power_w: f64,
    /// Cost, USD.
    pub cost_usd: f64,
}

impl CpuAnchor {
    /// GenA: 188 tokens/s, 270 W, $7200.
    #[must_use]
    pub fn gen_a_paper() -> Self {
        CpuAnchor {
            tokens_per_sec: 188.0,
            power_w: 270.0,
            cost_usd: 7200.0,
        }
    }

    /// Performance per watt.
    #[must_use]
    pub fn perf_per_watt(&self) -> f64 {
        self.tokens_per_sec / self.power_w
    }

    /// Performance per dollar.
    #[must_use]
    pub fn perf_per_cost(&self) -> f64 {
        self.tokens_per_sec / self.cost_usd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_is_about_2_1x_better_perf_per_watt_than_gen_a() {
        let gpu = GpuReference::a100_flexgen();
        let cpu = CpuAnchor::gen_a_paper();
        let ratio = gpu.perf_per_watt() / cpu.perf_per_watt();
        assert!((1.9..=2.3).contains(&ratio), "Fig 5: ≈2.1×, got {ratio}");
    }

    #[test]
    fn gpu_perf_per_cost_is_about_1_3x_gen_a() {
        let gpu = GpuReference::a100_flexgen();
        let cpu = CpuAnchor::gen_a_paper();
        let ratio = gpu.perf_per_cost() / cpu.perf_per_cost();
        assert!((1.1..=1.5).contains(&ratio), "§VII-E: ≈1.3×, got {ratio}");
    }

    #[test]
    fn anchors_match_paper_text() {
        let cpu = CpuAnchor::gen_a_paper();
        assert_eq!(cpu.tokens_per_sec, 188.0);
        assert_eq!(cpu.power_w, 270.0);
        assert_eq!(cpu.cost_usd, 7200.0);
    }
}
