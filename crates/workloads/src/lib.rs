//! # aum-workloads — co-located workload models
//!
//! Everything that shares the machine with (or is compared against) the
//! AU-accelerated LLM serving application:
//!
//! - [`be`]: best-effort co-runners — Compute (sysbench), OLAP (TPC-H),
//!   SPECjbb — with calibrated interference fingerprints, throughput
//!   models and §VII-A1 unit prices;
//! - [`au_apps`]: the Fig 4 AU-accelerated apps (Faiss, Vocoder, DeepFM);
//! - [`gpu`]: the A100/FlexGen reference point of Fig 5.
//!
//! ## Example
//!
//! ```
//! use aum_platform::spec::PlatformSpec;
//! use aum_workloads::be::{BeKind, BeProfile};
//!
//! let spec = PlatformSpec::gen_a();
//! let olap = BeProfile::of(BeKind::Olap);
//! let full = olap.throughput(&spec, 24, 3.2, 16, 16, 1.0, 1.0);
//! let starved = olap.throughput(&spec, 24, 3.2, 2, 16, 2.0, 1.0);
//! assert!(starved < full);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod au_apps;
pub mod be;
pub mod gpu;

pub use au_apps::{au_acceleration, AuApp};
pub use be::{BeKind, BeProfile};
pub use gpu::{CpuAnchor, GpuReference};
