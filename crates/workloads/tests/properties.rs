//! Property-based tests of the co-runner workload models.

use proptest::prelude::*;

use aum_platform::spec::PlatformSpec;
use aum_workloads::au_apps::{au_acceleration, AuApp};
use aum_workloads::be::{BeKind, BeProfile};

fn any_be() -> impl Strategy<Value = BeKind> {
    prop_oneof![
        Just(BeKind::Compute),
        Just(BeKind::Olap),
        Just(BeKind::SpecJbb)
    ]
}

fn any_app() -> impl Strategy<Value = AuApp> {
    prop_oneof![
        Just(AuApp::Faiss),
        Just(AuApp::Vocoder),
        Just(AuApp::DeepFm)
    ]
}

proptest! {
    #[test]
    fn throughput_is_monotone_in_every_resource(
        kind in any_be(),
        cores in 1usize..96,
        freq in 0.8f64..3.4,
        ways in 1u32..16,
        bw_slow in 1.0f64..4.0,
        smt_slow in 1.0f64..3.0,
    ) {
        let spec = PlatformSpec::gen_a();
        let p = BeProfile::of(kind);
        let base = p.throughput(&spec, cores, freq, ways, ways, bw_slow, smt_slow);
        prop_assert!(base >= 0.0 && base.is_finite());
        prop_assert!(p.throughput(&spec, cores + 1, freq, ways, ways, bw_slow, smt_slow) >= base);
        prop_assert!(p.throughput(&spec, cores, freq + 0.1, ways, ways, bw_slow, smt_slow) >= base - 1e-9);
        prop_assert!(p.throughput(&spec, cores, freq, ways + 1, ways, bw_slow, smt_slow) >= base - 1e-9);
        prop_assert!(p.throughput(&spec, cores, freq, ways, ways, bw_slow + 0.5, smt_slow) <= base + 1e-9);
        prop_assert!(p.throughput(&spec, cores, freq, ways, ways, bw_slow, smt_slow + 0.5) <= base + 1e-9);
    }

    #[test]
    fn bw_demand_scales_with_cores_and_pressure(
        kind in any_be(),
        cores in 1usize..96,
        w1 in 1u32..16,
        w2 in 1u32..16,
    ) {
        let spec = PlatformSpec::gen_a();
        let p = BeProfile::of(kind);
        let (lo_w, hi_w) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let starved = p.bw_demand(&spec, cores, lo_w);
        let comfy = p.bw_demand(&spec, cores, hi_w);
        prop_assert!(starved.value() >= comfy.value() - 1e-9, "fewer ways → more DRAM traffic");
        let double = p.bw_demand(&spec, cores * 2, lo_w);
        prop_assert!((double.value() - 2.0 * starved.value()).abs() < 1e-6 * double.value().max(1.0));
    }

    #[test]
    fn fluctuation_is_bounded_and_positive(kind in any_be(), t in 0.0f64..10_000.0) {
        let p = BeProfile::of(kind);
        let f = p.fluctuation(t);
        prop_assert!(f > 0.2 && f < 2.0);
    }

    #[test]
    fn au_acceleration_is_finite_and_beneficial_at_scale(
        app in any_app(),
        d in 64usize..2048,
        cores in 1usize..120,
        bs in 8usize..128,
    ) {
        let spec = PlatformSpec::gen_c();
        let s = au_acceleration(&spec, app, d, cores, bs);
        prop_assert!(s.is_finite() && s > 0.0);
        prop_assert!(s >= 0.9, "AU should never seriously hurt a batched kernel, got {s}");
        prop_assert!(s < 300.0, "speedup beyond unit ratios is impossible, got {s}");
    }

    #[test]
    fn zero_cores_zero_throughput(kind in any_be(), freq in 0.5f64..3.4) {
        let spec = PlatformSpec::gen_a();
        prop_assert_eq!(BeProfile::of(kind).throughput(&spec, 0, freq, 8, 8, 1.0, 1.0), 0.0);
    }
}
