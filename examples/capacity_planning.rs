//! Capacity planning: which platform and co-runner pairing yields the best
//! performance-per-watt for a target scenario, and how far from the GPU
//! reference it lands — the operator-facing use of the library.
//!
//! Run with: `cargo run --release -p aum --example capacity_planning`

use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::prices::Prices;
use aum::profiler::{build_model, ProfilerConfig};
use aum::tco::{tco_report, TcoInputs};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_workloads::be::BeKind;

fn main() {
    let scenario = Scenario::Chatbot;
    let mut best: Option<(String, BeKind, f64)> = None;
    for spec in PlatformSpec::presets() {
        for be in BeKind::ALL {
            let model = build_model(&ProfilerConfig::paper_default(spec.clone(), scenario, be));
            let cfg = ExperimentConfig::paper_default(spec.clone(), scenario, Some(be));
            let out = run_experiment(&cfg, &mut AumController::new(model));
            let value_per_watt = out.efficiency;
            println!(
                "{:<6} + {:<8}: E_CPU {:.3} | decode {:>5.0} tok/s | BE {:>9.0}/s | {:.0} W | TPOT-G {:.2}",
                spec.name, be.to_string(), value_per_watt, out.decode_tps, out.be_rate,
                out.avg_power_w, out.slo.tpot_guarantee,
            );
            if best.as_ref().is_none_or(|(_, _, e)| value_per_watt > *e) {
                best = Some((spec.name.clone(), be, value_per_watt));
            }
        }
    }
    let (platform, be, eff) = best.expect("grid is non-empty");
    println!("\nbest pairing: {platform} + {be} (E_CPU {eff:.3})");

    // Where does an AUM-managed GenA land against the GPU reference?
    let report = tco_report(&TcoInputs::gen_a_with_gain(1.15));
    println!(
        "GenA + AUM vs A100 reference: {:.0}% perf-per-CapEx, {:.0}% perf-per-watt",
        report.perf_per_capex_vs_gpu * 100.0,
        report.perf_per_watt_vs_gpu * 100.0,
    );
    let _ = Prices::paper_default();
}
