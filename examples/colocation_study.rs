//! Co-location study: every scheme of the paper's Table V against every
//! co-runner for one scenario — a miniature Fig 14/16/17.
//!
//! Run with: `cargo run --release -p aum --example colocation_study [cb|cc|sm]`

use aum::baselines::{AllAu, AuFi, AuRb, AuUp, RpAu, SmtAu};
use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig, Outcome};
use aum::manager::ResourceManager;
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_workloads::be::BeKind;

fn main() {
    let scenario = match std::env::args().nth(1).as_deref() {
        Some("cc") => Scenario::CodeCompletion,
        Some("sm") => Scenario::Summarization,
        _ => Scenario::Chatbot,
    };
    let spec = PlatformSpec::gen_a();
    println!("scenario: {scenario} on {}", spec.name);

    let exclusive_cfg = ExperimentConfig::paper_default(spec.clone(), scenario, None);
    let baseline = run_experiment(&exclusive_cfg, &mut AllAu::new(&spec));
    print_row("ALL-AU (exclusive)", &baseline, &baseline);

    for be in BeKind::ALL {
        println!("\n--- sharing with {be} ---");
        let cfg = ExperimentConfig::paper_default(spec.clone(), scenario, Some(be));
        let model = build_model(&ProfilerConfig::paper_default(spec.clone(), scenario, be));
        let mut managers: Vec<Box<dyn ResourceManager>> = vec![
            Box::new(SmtAu::new(&spec)),
            Box::new(RpAu::new(&spec)),
            Box::new(AuUp::new(&spec)),
            Box::new(AuFi::new(&spec)),
            Box::new(AuRb::new(&spec)),
            Box::new(AumController::new(model)),
        ];
        for mgr in managers.iter_mut() {
            let out = run_experiment(&cfg, mgr.as_mut());
            print_row(&out.scheme.clone(), &out, &baseline);
        }
    }
}

fn print_row(name: &str, o: &Outcome, base: &Outcome) {
    println!(
        "{name:<20} eff {:+6.1}% | TTFT-G {:.2} TPOT-G {:.2} | BE {:>9.0}/s | {:>5.0} W",
        (o.efficiency / base.efficiency - 1.0) * 100.0,
        o.slo.ttft_guarantee,
        o.slo.tpot_guarantee,
        o.be_rate,
        o.avg_power_w,
    );
}
