//! Implementing your own resource manager against the `ResourceManager`
//! trait: a "bandwidth guardian" that only throttles the shared class when
//! memory-pool utilization runs hot, and compares itself against AUM.
//!
//! Run with: `cargo run --release -p aum --example custom_manager`

use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::manager::{Decision, ResourceManager, SystemState};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::engine::EngineMode;
use aum_llm::traces::Scenario;
use aum_platform::rdt::{RdtAllocation, ResourceVector};
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::ProcessorDivision;
use aum_workloads::be::BeKind;

/// Throttles the shared class's MBA allocation when the pool runs hot;
/// otherwise splits the machine statically.
struct BandwidthGuardian {
    division: ProcessorDivision,
    shared_bw: f64,
}

impl BandwidthGuardian {
    fn new(spec: &PlatformSpec) -> Self {
        let total = spec.total_cores();
        BandwidthGuardian {
            division: ProcessorDivision::new(total / 2, total / 4, total - total / 2 - total / 4),
            shared_bw: 0.3,
        }
    }
}

impl ResourceManager for BandwidthGuardian {
    fn name(&self) -> &'static str {
        "BW-GUARD"
    }

    fn decide(&mut self, state: &SystemState) -> Decision {
        // Simple feedback on pool utilization: hot pool → shrink the
        // shared class's bandwidth, cool pool → grow it.
        if state.bw_utilization > 0.95 {
            self.shared_bw = (self.shared_bw - 0.05).max(0.05);
        } else if state.bw_utilization < 0.8 {
            self.shared_bw = (self.shared_bw + 0.05).min(0.45);
        }
        Decision {
            division: self.division,
            allocation: RdtAllocation::new(
                ResourceVector::new(10, 10, 1.0 - self.shared_bw),
                ResourceVector::new(6, 6, self.shared_bw),
            ),
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        }
    }
}

fn main() {
    let spec = PlatformSpec::gen_a();
    let scenario = Scenario::Chatbot;
    let be = BeKind::SpecJbb;
    let cfg = ExperimentConfig::paper_default(spec.clone(), scenario, Some(be));

    let mut guardian = BandwidthGuardian::new(&spec);
    let guard_out = run_experiment(&cfg, &mut guardian);

    let model = build_model(&ProfilerConfig::paper_default(spec.clone(), scenario, be));
    let aum_out = run_experiment(&cfg, &mut AumController::new(model));

    for o in [&guard_out, &aum_out] {
        println!(
            "{:<10} efficiency {:.3} | TPOT-G {:.2} | BE {:>9.0}/s | {:.0} W",
            o.scheme, o.efficiency, o.slo.tpot_guarantee, o.be_rate, o.avg_power_w,
        );
    }
    println!(
        "\nAUM vs custom guardian: {:+.1}% efficiency — the AUV model's usage/frequency/bound\n\
         awareness beats single-signal feedback.",
        (aum_out.efficiency / guard_out.efficiency - 1.0) * 100.0
    );
}
