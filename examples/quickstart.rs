//! Quickstart: profile a platform, serve a chatbot workload alongside
//! SPECjbb under AUM, and compare against the exclusive deployment.
//!
//! Run with: `cargo run --release -p aum --example quickstart`

use aum::baselines::AllAu;
use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_workloads::be::BeKind;

fn main() {
    let spec = PlatformSpec::gen_a();
    println!(
        "platform: {} ({} cores, {} memory)",
        spec.name,
        spec.total_cores(),
        spec.memory
    );

    // 1. Background profiling: characterize the accelerator-unit variations
    //    into the discrete AUV model (offline, amortized across the fleet).
    println!("profiling AUV model...");
    let model = build_model(&ProfilerConfig::paper_default(
        spec.clone(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    println!(
        "  {} buckets from {} pinned executions",
        model.buckets.len(),
        model.profiling_runs
    );

    // 2. Serve exclusively (today's practice) and with AUM sharing.
    let exclusive_cfg = ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, None);
    let shared_cfg =
        ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, Some(BeKind::SpecJbb));

    let exclusive = run_experiment(&exclusive_cfg, &mut AllAu::new(&spec));
    let aum = run_experiment(&shared_cfg, &mut AumController::new(model));

    // 3. Compare.
    println!("\n{:<22}{:>12}{:>12}", "", "ALL-AU", "AUM");
    let rows: [(&str, f64, f64); 6] = [
        ("prefill tokens/s", exclusive.prefill_tps, aum.prefill_tps),
        ("decode tokens/s", exclusive.decode_tps, aum.decode_tps),
        ("SPECjbb jOPS/s", exclusive.be_rate, aum.be_rate),
        ("package power (W)", exclusive.avg_power_w, aum.avg_power_w),
        (
            "TPOT guarantee",
            exclusive.slo.tpot_guarantee,
            aum.slo.tpot_guarantee,
        ),
        ("efficiency E_CPU", exclusive.efficiency, aum.efficiency),
    ];
    for (label, a, b) in rows {
        println!("{label:<22}{a:>12.2}{b:>12.2}");
    }
    println!(
        "\nAUM improves performance-per-watt by {:+.1}% while co-locating SPECjbb.",
        (aum.efficiency_vs(&exclusive) - 1.0) * 100.0
    );
}
