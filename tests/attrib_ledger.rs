//! Property-based conservation tests of the attribution ledger over live
//! experiments: for random platform presets, co-runners, fault plans,
//! rates and seeds, every run's ledger must close — attributed time equals
//! wall time and attributed joules equal modeled package energy within
//! [`aum_sim::attrib::EPSILON`] — with no negative cell, and the ledger
//! must survive a serde round trip. Case counts are kept low because each
//! case is a full (short) experiment.

use proptest::prelude::*;

use aum::baselines::{AllAu, RpAu, SmtAu};
use aum::experiment::{
    try_run_experiment_traced, ExperimentConfig, Fault, FaultEvent, FaultPlan, Outcome,
};
use aum::manager::ResourceManager;
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;
use aum_sim::attrib::{Ledger, EPSILON};
use aum_sim::telemetry::Tracer;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

fn platform() -> impl Strategy<Value = PlatformSpec> {
    prop_oneof![
        Just(PlatformSpec::gen_a()),
        Just(PlatformSpec::gen_b()),
        Just(PlatformSpec::gen_c()),
    ]
}

fn scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![Just(Scenario::Chatbot), Just(Scenario::Summarization)]
}

fn be() -> impl Strategy<Value = Option<BeKind>> {
    prop_oneof![
        Just(None),
        Just(Some(BeKind::SpecJbb)),
        Just(Some(BeKind::Olap)),
        Just(Some(BeKind::Compute)),
    ]
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    prop_oneof![
        Just(FaultPlan::none()),
        (0.3f64..0.95).prop_map(|frac| {
            FaultPlan::single(FaultEvent::permanent(4.0, Fault::BandwidthDegrade { frac }))
        }),
        (0.8f64..1.4).prop_map(|severity| {
            FaultPlan::single(FaultEvent::windowed(
                3.0,
                10.0,
                Fault::ThermalRunaway { severity },
            ))
        }),
        (1usize..24).prop_map(|count| {
            FaultPlan::single(FaultEvent::permanent(5.0, Fault::CoreOffline { count }))
        }),
        Just(FaultPlan::single(FaultEvent::permanent(
            4.0,
            Fault::FrequencyLicenseLock {
                level: AuUsageLevel::High,
            },
        ))),
        (1.5f64..4.0).prop_map(|factor| {
            FaultPlan::single(FaultEvent::windowed(3.0, 9.0, Fault::BeSurge { factor }))
        }),
    ]
}

/// One randomly drawn experiment: platform, workload, fault plan and the
/// knobs that vary run length, load and the manager under test.
#[derive(Debug, Clone)]
struct RandomCase {
    spec: PlatformSpec,
    scenario: Scenario,
    be: Option<BeKind>,
    fault: FaultPlan,
    rate_scale: f64,
    seed: u64,
    duration_secs: u64,
    manager_pick: u8,
}

fn run_random(case: &RandomCase) -> Outcome {
    let mut cfg = ExperimentConfig::paper_default(case.spec.clone(), case.scenario, case.be);
    cfg.duration = SimDuration::from_secs(case.duration_secs);
    cfg.seed = case.seed;
    cfg.rate = Some(case.scenario.default_rate() * case.rate_scale);
    cfg.fault = case.fault.clone();
    let mut mgr: Box<dyn ResourceManager> = match case.manager_pick % 3 {
        0 => Box::new(AllAu::new(&case.spec)),
        1 => Box::new(SmtAu::new(&case.spec)),
        _ => Box::new(RpAu::new(&case.spec)),
    };
    // ALL-AU runs exclusively by definition; drop the co-runner for it.
    if case.manager_pick.is_multiple_of(3) {
        cfg.be = None;
    }
    try_run_experiment_traced(&cfg, mgr.as_mut(), Tracer::disabled())
        .expect("conservation must hold for every random configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ledger_closes_for_random_experiments(
        spec in platform(),
        scenario in scenario(),
        be in be(),
        fault in fault_plan(),
        rate_scale in 0.3f64..1.5,
        seed in 0u64..1000,
        duration_secs in 8u64..20,
        manager_pick in 0u8..3,
    ) {
        let case = RandomCase {
            spec, scenario, be, fault, rate_scale, seed, duration_secs, manager_pick,
        };
        let outcome = run_random(&case);
        let ledger = &outcome.ledger;

        // The run already passed the in-harness gate; re-verify explicitly
        // and check the stronger cell-level facts the gate implies.
        prop_assert!(ledger.verify(EPSILON).is_ok());
        prop_assert!(!ledger.is_empty(), "a run must produce intervals");
        prop_assert!(
            (ledger.wall_secs() - duration_secs as f64).abs() < 1e-6,
            "ledger wall time {} must cover the configured duration {duration_secs}",
            ledger.wall_secs()
        );
        for iv in &ledger.intervals {
            prop_assert!(iv.energy_j >= 0.0);
            for region in &iv.regions {
                for (cause, v) in region.time.iter().chain(region.energy.iter()) {
                    prop_assert!(v >= 0.0, "negative {cause}: {v}");
                }
            }
        }

        // Average ledger power is consistent with the outcome's own power
        // accounting (same model, independent summation paths).
        let ledger_avg_w = ledger.energy_j() / ledger.wall_secs();
        prop_assert!(
            (ledger_avg_w - outcome.avg_power_w).abs() <= 1e-6 * outcome.avg_power_w.max(1.0),
            "ledger avg power {ledger_avg_w} vs outcome {}",
            outcome.avg_power_w
        );

        // The ledger survives serialization inside the outcome.
        let json = serde_json::to_string(&outcome.ledger).expect("serializes");
        let back: Ledger = serde_json::from_str(&json).expect("deserializes");
        prop_assert!(back.verify(EPSILON).is_ok());
        prop_assert!((back.energy_j() - ledger.energy_j()).abs() < 1e-9);
    }
}
