//! The Table V baselines, exercised end-to-end: every scheme must produce
//! valid decisions on every platform, and their relative behaviours must
//! match the paper's characterization (Fig 9, 14, 16, 17).

use aum::baselines::{AllAu, AuFi, AuRb, AuUp, RpAu, SmtAu};
use aum::experiment::{run_experiment, ExperimentConfig, Outcome};
use aum::manager::ResourceManager;
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

fn run(mgr: &mut dyn ResourceManager, spec: &PlatformSpec, be: Option<BeKind>) -> Outcome {
    let mut cfg = ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, be);
    cfg.duration = SimDuration::from_secs(120);
    run_experiment(&cfg, mgr)
}

#[test]
fn every_baseline_serves_on_every_platform() {
    for spec in PlatformSpec::presets() {
        let mut managers: Vec<Box<dyn ResourceManager>> = vec![
            Box::new(AllAu::new(&spec)),
            Box::new(SmtAu::new(&spec)),
            Box::new(RpAu::new(&spec)),
            Box::new(AuUp::new(&spec)),
            Box::new(AuFi::new(&spec)),
            Box::new(AuRb::new(&spec)),
        ];
        for mgr in managers.iter_mut() {
            let be = if mgr.name() == "ALL-AU" {
                None
            } else {
                Some(BeKind::SpecJbb)
            };
            let out = run(mgr.as_mut(), &spec, be);
            assert!(
                out.decode_tps > 10.0,
                "{} on {}: serving collapsed ({} tokens/s)",
                out.scheme,
                spec.name,
                out.decode_tps
            );
            assert!(out.avg_power_w > 100.0, "{}: implausible power", out.scheme);
        }
    }
}

#[test]
fn exclusive_has_best_au_performance_and_no_sharing() {
    let spec = PlatformSpec::gen_a();
    let excl = run(&mut AllAu::new(&spec), &spec, None);
    assert_eq!(excl.be_rate, 0.0);
    for mgr in [
        Box::new(SmtAu::new(&spec)) as Box<dyn ResourceManager>,
        Box::new(AuFi::new(&spec)),
    ] {
        let mut mgr = mgr;
        let out = run(mgr.as_mut(), &spec, Some(BeKind::Olap));
        assert!(
            out.decode_tps <= excl.decode_tps * 1.05,
            "{} cannot beat exclusive AU performance",
            out.scheme
        );
        assert!(out.be_rate > 0.0, "{} must share", out.scheme);
    }
}

#[test]
fn smt_with_olap_devastates_decode() {
    // Fig 9a: memory-intensive SMT siblings degrade AU latency >200%.
    let spec = PlatformSpec::gen_a();
    let excl = run(&mut AllAu::new(&spec), &spec, None);
    let smt = run(&mut SmtAu::new(&spec), &spec, Some(BeKind::Olap));
    assert!(
        smt.decode_tps < excl.decode_tps * 0.7,
        "OLAP hyperthreads must hurt decode: {} vs {}",
        smt.decode_tps,
        excl.decode_tps
    );
    assert!(
        smt.slo.tpot_guarantee < 0.2,
        "and its TPOT SLO: {}",
        smt.slo.tpot_guarantee
    );
}

#[test]
fn smt_with_compute_hurts_via_frequency_not_memory() {
    // Fig 9b: a compute sibling interferes little directly; its damage is
    // the license frequency drop, so decode (memory-bound) survives better
    // than with OLAP.
    let spec = PlatformSpec::gen_a();
    let olap = run(&mut SmtAu::new(&spec), &spec, Some(BeKind::Olap));
    let compute = run(&mut SmtAu::new(&spec), &spec, Some(BeKind::Compute));
    assert!(
        compute.decode_tps > olap.decode_tps * 1.3,
        "Compute sibling must hurt decode far less than OLAP: {} vs {}",
        compute.decode_tps,
        olap.decode_tps
    );
}

#[test]
fn au_fi_shares_most_cores_au_up_protects_serving() {
    // Fig 16: AU-FI maximizes sharing, AU-UP maximizes AU performance.
    let spec = PlatformSpec::gen_a();
    let fi = run(&mut AuFi::new(&spec), &spec, Some(BeKind::SpecJbb));
    let up = run(&mut AuUp::new(&spec), &spec, Some(BeKind::SpecJbb));
    assert!(
        fi.be_rate > up.be_rate * 1.5,
        "AU-FI shares more: {} vs {}",
        fi.be_rate,
        up.be_rate
    );
    assert!(
        up.slo.tpot_guarantee > fi.slo.tpot_guarantee,
        "AU-UP protects serving better: {} vs {}",
        up.slo.tpot_guarantee,
        fi.slo.tpot_guarantee
    );
}

#[test]
fn rp_au_feedback_converges_without_oscillating_wildly() {
    let spec = PlatformSpec::gen_a();
    let out = run(&mut RpAu::new(&spec), &spec, Some(BeKind::SpecJbb));
    // The PARTIES-style ladder must settle into a sane band: both classes
    // make progress and the shared LLC allocation varies by at most the
    // ladder's span.
    assert!(out.be_rate > 0.0);
    assert!(out.decode_tps > 40.0);
    let spread = out.shared_llc_samples.quantile(1.0) - out.shared_llc_samples.quantile(0.0);
    assert!(
        spread <= 8.0 + 1e-9,
        "ladder spread {spread} exceeds its design range"
    );
}

#[test]
fn au_rb_protects_bandwidth_over_llc() {
    let spec = PlatformSpec::gen_a();
    let out = run(&mut AuRb::new(&spec), &spec, Some(BeKind::SpecJbb));
    // Bound-aware partitioning gives the shared class most of the LLC
    // while protecting the AU's bandwidth: good TPOT, real sharing.
    assert!(
        out.slo.tpot_guarantee > 0.8,
        "TPOT guarantee {}",
        out.slo.tpot_guarantee
    );
    assert!(out.shared_llc_samples.quantile(0.5) >= 10.0);
}
