//! Invariants that span crate boundaries: the Table I specs must flow
//! consistently through the AU cost model, the LLM engine, and the
//! platform model — the chain every experiment depends on.

use aum_au::counters::PmuCounters;
use aum_au::gemm::{gemm_time, ExecContext, GemmShape};
use aum_au::unit::{AuKind, AuSpec, Precision};
use aum_llm::config::ModelConfig;
use aum_llm::cost::{iteration_cost, AuKernels};
use aum_llm::ops::Phase;
use aum_platform::power::ActivityClass;
use aum_platform::spec::PlatformSpec;
use aum_platform::state::{PlatformSim, RegionLoad};
use aum_platform::topology::AuUsageLevel;
use aum_platform::units::GbPerSec;
use aum_sim::time::SimDuration;

#[test]
fn paper_gemm_anchors_hold_on_gen_a() {
    // §IV-A3: prefill GEMM ≈40.57 TFLOPS, decode GEMM ≈3.87 TFLOPS.
    let spec = PlatformSpec::gen_a();
    let amx = AuSpec::for_platform(&spec, AuKind::Amx);
    let ctx = ExecContext::new(spec.total_cores(), 2.5, spec.mem_bw);
    let prefill = gemm_time(
        GemmShape::new(8192, 4096, 22016),
        Precision::Bf16,
        &amx,
        &ctx,
    );
    let decode = gemm_time(GemmShape::new(16, 4096, 22016), Precision::Bf16, &amx, &ctx);
    assert!(
        (34.0..48.0).contains(&prefill.achieved_tflops),
        "{}",
        prefill.achieved_tflops
    );
    assert!(
        (2.5..5.5).contains(&decode.achieved_tflops),
        "{}",
        decode.achieved_tflops
    );
    let ratio = prefill.achieved_tflops / decode.achieved_tflops;
    assert!(
        ratio > 7.0,
        "the phase gap is an order of magnitude, got {ratio}"
    );
}

#[test]
fn serving_throughput_anchor_holds() {
    // §III-B: GenA ≈188 tokens/s at batch 16.
    let spec = PlatformSpec::gen_a();
    let kernels = AuKernels::for_platform(&spec);
    let ctx = ExecContext::new(spec.total_cores(), 3.1, spec.mem_bw * 0.95);
    let mut pmu = PmuCounters::new();
    let cost = iteration_cost(
        &ModelConfig::llama2_7b(),
        Phase::Decode,
        16,
        855,
        Precision::Bf16,
        &kernels,
        &ctx,
        &mut pmu,
    );
    let tps = 16.0 / cost.time.as_secs_f64();
    assert!(
        (130.0..230.0).contains(&tps),
        "expected ≈188 tokens/s, got {tps}"
    );
}

#[test]
fn faster_platforms_serve_faster() {
    let run = |spec: &PlatformSpec| {
        let kernels = AuKernels::for_platform(spec);
        let gov = aum_platform::freq::FrequencyGovernor::for_spec(spec);
        let f = gov.license_frequency(AuUsageLevel::Low).value();
        let ctx = ExecContext::new(spec.total_cores(), f, spec.mem_bw * 0.95);
        let mut pmu = PmuCounters::new();
        iteration_cost(
            &ModelConfig::llama2_7b(),
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ctx,
            &mut pmu,
        )
        .time
        .as_secs_f64()
    };
    let a = run(&PlatformSpec::gen_a());
    let b = run(&PlatformSpec::gen_b());
    let c = run(&PlatformSpec::gen_c());
    assert!(b < a * 0.6, "HBM must accelerate decode: {b} vs {a}");
    assert!(c < a * 0.6, "MCR must accelerate decode: {c} vs {a}");
}

#[test]
fn license_frequencies_feed_the_cost_model_consistently() {
    // The same AMX license frequency the governor reports must make prefill
    // slower than a hypothetical turbo-clocked run — the Variation-2 tax.
    let spec = PlatformSpec::gen_a();
    let kernels = AuKernels::for_platform(&spec);
    let at = |freq: f64| {
        let mut pmu = PmuCounters::new();
        iteration_cost(
            &ModelConfig::llama2_7b(),
            Phase::Prefill,
            755,
            755,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, freq, spec.mem_bw),
            &mut pmu,
        )
        .time
        .as_secs_f64()
    };
    let licensed = at(2.5);
    let hypothetical_turbo = at(3.2);
    let tax = licensed / hypothetical_turbo;
    assert!(
        (1.15..1.35).contains(&tax),
        "AMX license costs ≈ 3.2/2.5 = 1.28× on compute-bound prefill, got {tax}"
    );
}

#[test]
fn platform_power_responds_to_engine_shaped_loads() {
    let spec = PlatformSpec::gen_a();
    let mut sim = PlatformSim::new(spec.clone());
    let serving = [
        RegionLoad::new(
            AuUsageLevel::High,
            32,
            ActivityClass::Amx,
            0.4,
            GbPerSec(40.0),
        ),
        RegionLoad::new(
            AuUsageLevel::Low,
            64,
            ActivityClass::Avx,
            0.9,
            GbPerSec(190.0),
        ),
    ];
    let idle = [RegionLoad::idle(AuUsageLevel::None, 96)];
    let p_serving = sim.step(SimDuration::from_millis(500), &serving).power;
    let p_idle = sim.step(SimDuration::from_millis(500), &idle).power;
    assert!(p_serving.value() > p_idle.value() + 50.0);
    assert!(p_idle.value() > 100.0, "static floor exists");
}

#[test]
fn public_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlatformSpec>();
    assert_send_sync::<aum::profiler::AuvModel>();
    assert_send_sync::<aum::controller::AumController>();
    assert_send_sync::<aum::experiment::Outcome>();
    assert_send_sync::<aum_llm::engine::LlmEngine>();
    assert_send_sync::<PlatformSim>();
}

#[test]
fn experiments_can_run_concurrently() {
    // The whole stack is value-oriented: experiments on different threads
    // must not interfere (no hidden globals).
    use aum::baselines::AllAu;
    use aum::experiment::{run_experiment, ExperimentConfig};
    use aum_llm::traces::Scenario;
    let handles: Vec<_> = (0..4)
        .map(|seed| {
            std::thread::spawn(move || {
                let spec = PlatformSpec::gen_a();
                let mut cfg =
                    ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, None);
                cfg.duration = SimDuration::from_secs(60);
                cfg.seed = seed;
                run_experiment(&cfg, &mut AllAu::new(&spec)).decode_tps
            })
        })
        .collect();
    for h in handles {
        let tps = h.join().expect("no panic");
        assert!(tps > 10.0);
    }
}
