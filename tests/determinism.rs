//! Bit-for-bit determinism of the full stack: the same seed must reproduce
//! identical outcomes — traces, platform evolution, controller decisions,
//! and final metrics.

use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

fn cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        Some(BeKind::SpecJbb),
    );
    cfg.duration = SimDuration::from_secs(90);
    cfg.seed = seed;
    cfg
}

#[test]
fn profiler_is_deterministic() {
    let pc = ProfilerConfig::smoke(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    let a = build_model(&pc);
    let b = build_model(&pc);
    assert_eq!(
        a, b,
        "two profiling sweeps with the same seed must agree exactly"
    );
}

#[test]
fn aum_controller_runs_are_bit_identical() {
    let pc = ProfilerConfig::smoke(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    let run = || {
        let model = build_model(&pc);
        run_experiment(&cfg(7), &mut AumController::new(model))
    };
    let a = run();
    let b = run();
    assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits());
    assert_eq!(a.decode_tps.to_bits(), b.decode_tps.to_bits());
    assert_eq!(a.avg_power_w.to_bits(), b.avg_power_w.to_bits());
    assert_eq!(a.completed, b.completed);
    assert_eq!(
        a.slo.tpot_guarantee.to_bits(),
        b.slo.tpot_guarantee.to_bits()
    );
    assert_eq!(a.shared_llc_samples.values(), b.shared_llc_samples.values());
}

#[test]
fn different_seeds_differ() {
    let pc = ProfilerConfig::smoke(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    let model = build_model(&pc);
    let a = run_experiment(&cfg(7), &mut AumController::new(model.clone()));
    let b = run_experiment(&cfg(8), &mut AumController::new(model));
    assert_ne!(
        a.decode_tps.to_bits(),
        b.decode_tps.to_bits(),
        "different seeds must produce different traces"
    );
}
