//! End-to-end reproduction of the paper's headline claims on a reduced
//! scale: profile, serve under AUM, and compare with the exclusive and
//! AUV-oblivious deployments.

use aum::baselines::{AllAu, SmtAu};
use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

fn short(mut cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.duration = SimDuration::from_secs(120);
    cfg
}

#[test]
fn aum_beats_exclusive_efficiency_with_specjbb() {
    let spec = PlatformSpec::gen_a();
    let model = build_model(&ProfilerConfig::paper_default(
        spec.clone(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let exclusive = run_experiment(
        &short(ExperimentConfig::paper_default(
            spec.clone(),
            Scenario::Chatbot,
            None,
        )),
        &mut AllAu::new(&spec),
    );
    let aum = run_experiment(
        &short(ExperimentConfig::paper_default(
            spec.clone(),
            Scenario::Chatbot,
            Some(BeKind::SpecJbb),
        )),
        &mut AumController::new(model),
    );
    let gain = aum.efficiency_vs(&exclusive);
    // Paper: +8.8% on average; our simulated exclusive baseline wastes more
    // decode power, so the same mechanism lands somewhat higher. The claim
    // under test: a positive, bounded improvement.
    assert!(gain > 1.03, "AUM must beat exclusive serving, got {gain}");
    assert!(
        gain < 1.45,
        "gain should stay physically plausible, got {gain}"
    );
    assert!(aum.be_rate > 0.0, "AUM must actually run the co-runner");
    // Serving must not collapse: decode throughput within 10% of exclusive.
    assert!(
        aum.decode_tps > exclusive.decode_tps * 0.9,
        "AUM decode {} vs exclusive {}",
        aum.decode_tps,
        exclusive.decode_tps
    );
}

#[test]
fn aum_reduces_violations_vs_oblivious_smt() {
    let spec = PlatformSpec::gen_a();
    let model = build_model(&ProfilerConfig::paper_default(
        spec.clone(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let cfg = short(ExperimentConfig::paper_default(
        spec.clone(),
        Scenario::Chatbot,
        Some(BeKind::SpecJbb),
    ));
    let smt = run_experiment(&cfg, &mut SmtAu::new(&spec));
    let aum = run_experiment(&cfg, &mut AumController::new(model));
    assert!(
        aum.slo.violation_rate() < smt.slo.violation_rate() - 0.05,
        "paper: AUM reduces SLO violations vs AUV-oblivious sharing; got AUM {} vs SMT {}",
        aum.slo.violation_rate(),
        smt.slo.violation_rate()
    );
}

#[test]
fn code_completion_ttft_is_unattainable_even_exclusively() {
    // §VII-C: for cc with its 75 ms TTFT, even exclusive prefill misses.
    let spec = PlatformSpec::gen_a();
    let cc_exclusive = run_experiment(
        &short(ExperimentConfig::paper_default(
            spec.clone(),
            Scenario::CodeCompletion,
            None,
        )),
        &mut AllAu::new(&spec),
    );
    assert!(
        cc_exclusive.slo.ttft_guarantee < 0.3,
        "cc TTFT is unattainable even exclusively, got {}",
        cc_exclusive.slo.ttft_guarantee
    );
    assert!(
        cc_exclusive.slo.tpot_guarantee > 0.9,
        "cc TPOT (150 ms) is loose, got {}",
        cc_exclusive.slo.tpot_guarantee
    );
}

#[test]
fn power_stays_within_physical_envelope() {
    let spec = PlatformSpec::gen_a();
    let out = run_experiment(
        &short(ExperimentConfig::paper_default(
            spec.clone(),
            Scenario::Chatbot,
            None,
        )),
        &mut AllAu::new(&spec),
    );
    // §III-B anchors GenA serving at ≈270 W; idle floor is ≈138 W.
    assert!(
        (140.0..=320.0).contains(&out.avg_power_w),
        "package power {} outside the physical envelope",
        out.avg_power_w
    );
}
