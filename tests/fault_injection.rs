//! Failure-injection tests: the managed system must degrade gracefully
//! under scripted platform faults — a bandwidth collapse, a cooling loss,
//! a pinned frequency license, corrupted sensors — and the AUM controller
//! must *react* (return resources, distrust sensors, enter safe mode)
//! rather than keep harvesting into the wall.

use aum::baselines::{AllAu, StaticBest};
use aum::controller::AumController;
use aum::experiment::{
    run_experiment, run_experiment_traced, ExperimentConfig, Fault, FaultEvent, FaultPlan,
};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;
use aum_sim::telemetry::{Event, MemorySink, Tracer};
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

fn cfg_with(be: Option<BeKind>, secs: u64, fault: FaultPlan) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, be);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.fault = fault;
    cfg
}

/// Memory RAS event at t=120 s: pool collapses to 60% of spec.
fn bw_fault_cfg(be: Option<BeKind>) -> ExperimentConfig {
    cfg_with(
        be,
        240,
        FaultPlan::single(FaultEvent::permanent(
            120.0,
            Fault::BandwidthDegrade { frac: 0.6 },
        )),
    )
}

#[test]
fn bandwidth_fault_degrades_exclusive_serving() {
    let spec = PlatformSpec::gen_a();
    let healthy = run_experiment(
        &ExperimentConfig {
            fault: FaultPlan::none(),
            ..bw_fault_cfg(None)
        },
        &mut AllAu::new(&spec),
    );
    let faulted = run_experiment(&bw_fault_cfg(None), &mut AllAu::new(&spec));
    assert!(
        faulted.slo.tpot_guarantee < healthy.slo.tpot_guarantee,
        "a 40% bandwidth loss must cost decode SLOs: {} vs {}",
        faulted.slo.tpot_guarantee,
        healthy.slo.tpot_guarantee
    );
    // The system keeps serving — degradation, not collapse.
    assert!(faulted.decode_tps > healthy.decode_tps * 0.5);
}

#[test]
fn aum_reacts_to_the_fault_where_static_best_cannot() {
    let spec = PlatformSpec::gen_a();
    let model = build_model(&ProfilerConfig::paper_default(
        spec.clone(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let cfg = bw_fault_cfg(Some(BeKind::SpecJbb));

    let mut aum = AumController::new(model.clone());
    let aum_out = run_experiment(&cfg, &mut aum);
    // The controller must visibly respond after the fault: tuning steps
    // and/or division switches happen (the fault makes measured TPOT
    // violate the profiled expectations).
    assert!(
        aum.tune_count() + aum.switch_count() > 0,
        "the controller must react to the bandwidth collapse"
    );

    let static_out = run_experiment(&cfg, &mut StaticBest::new(&model));
    // AUM's post-fault response (returning harvested bandwidth to the AU
    // class) must not leave it behind the frozen configuration on SLOs.
    assert!(
        aum_out.slo.tpot_guarantee >= static_out.slo.tpot_guarantee - 0.1,
        "AUM {} vs STATIC-BEST {}",
        aum_out.slo.tpot_guarantee,
        static_out.slo.tpot_guarantee
    );
}

#[test]
fn thermal_runaway_throttles_then_recovers() {
    let spec = PlatformSpec::gen_a();
    // Cooling fails at t=60 s and is restored at t=150 s.
    let plan = FaultPlan::single(FaultEvent::windowed(
        60.0,
        150.0,
        Fault::ThermalRunaway { severity: 1.5 },
    ));
    let healthy = run_experiment(
        &cfg_with(None, 240, FaultPlan::none()),
        &mut AllAu::new(&spec),
    );
    let faulted = run_experiment(&cfg_with(None, 240, plan), &mut AllAu::new(&spec));
    // The throttle is visible in the decode-region frequency telemetry
    // during the fault window (reservoirs heat within a few seconds)...
    let min_in_window = faulted
        .freq_low
        .iter()
        .filter(|(t, _)| (70.0..150.0).contains(&t.as_secs_f64()))
        .map(|(_, f)| f)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_in_window < 2.9,
        "cooling loss must throttle the Low region below its license: {min_in_window}"
    );
    // ...and releases after cooling is restored (hysteresis + decay lag).
    let end_freq = faulted.freq_low.last_value().expect("series nonempty");
    assert!(
        end_freq > 3.0,
        "throttle must release after recovery: {end_freq}"
    );
    // Latency absorbs the hit; the offered load keeps being served.
    assert!(
        faulted.slo.ttft_p90 > healthy.slo.ttft_p90,
        "throttled prefill must stretch the TTFT tail: {} vs {}",
        faulted.slo.ttft_p90,
        healthy.slo.ttft_p90
    );
    assert!(faulted.decode_tps > healthy.decode_tps * 0.9, "no collapse");
    assert!(faulted.completed > 0);
}

#[test]
fn license_lock_pins_decode_at_the_amx_curve() {
    let spec = PlatformSpec::gen_a();
    // A stuck PCU pins both AU regions to the High (slowest) license class
    // from t=30 s onward.
    let plan = FaultPlan::single(FaultEvent::permanent(
        30.0,
        Fault::FrequencyLicenseLock {
            level: AuUsageLevel::High,
        },
    ));
    let healthy = run_experiment(
        &cfg_with(None, 180, FaultPlan::none()),
        &mut AllAu::new(&spec),
    );
    let faulted = run_experiment(&cfg_with(None, 180, plan), &mut AllAu::new(&spec));
    // Every post-fault interval runs the Low region at the AMX license
    // point instead of its 3.1 GHz AVX license.
    let post_fault: Vec<f64> = faulted
        .freq_low
        .iter()
        .filter(|(t, _)| t.as_secs_f64() >= 30.0)
        .map(|(_, f)| f)
        .collect();
    assert!(!post_fault.is_empty());
    assert!(
        post_fault.iter().all(|f| *f < 2.6),
        "decode must be pinned below the AMX license once locked"
    );
    let healthy_freq = healthy.freq_low.last_value().expect("series nonempty");
    assert!(healthy_freq > 3.0, "healthy decode holds the AVX license");
    // Decode is bandwidth-bound on gen_a, so serving degrades gracefully
    // rather than collapsing with the frequency.
    assert!(
        faulted.decode_tps > healthy.decode_tps * 0.95,
        "bandwidth-bound decode keeps serving: {} vs {}",
        faulted.decode_tps,
        healthy.decode_tps
    );
    assert!(faulted.completed > 0);
}

#[test]
fn sensor_noise_does_not_destabilize_aum() {
    let spec = PlatformSpec::gen_a();
    let model = build_model(&ProfilerConfig::paper_default(
        spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    // Heavy lognormal noise on every controller input from t=30 s.
    let plan = FaultPlan::single(FaultEvent::permanent(
        30.0,
        Fault::SensorNoise { sigma: 0.8 },
    ));
    let mut clean_ctl = AumController::new(model.clone());
    let clean = run_experiment(
        &cfg_with(Some(BeKind::SpecJbb), 180, FaultPlan::none()),
        &mut clean_ctl,
    );
    let mut noisy_ctl = AumController::new(model);
    let noisy = run_experiment(&cfg_with(Some(BeKind::SpecJbb), 180, plan), &mut noisy_ctl);
    // The plausibility filter must have rejected spikes...
    assert!(
        noisy_ctl.sensor_rejections() > 0,
        "sigma=0.8 noise must trip the plausibility filter"
    );
    // ...and serving must stay in the same regime as the clean run.
    assert!(
        noisy.decode_tps > clean.decode_tps * 0.7,
        "noisy sensors must not collapse serving: {} vs {}",
        noisy.decode_tps,
        clean.decode_tps
    );
    assert!(noisy.slo.tpot_guarantee > 0.5, "decode SLOs largely hold");
}

#[test]
fn persistent_collapse_drives_aum_into_safe_mode() {
    let spec = PlatformSpec::gen_a();
    let model = build_model(&ProfilerConfig::paper_default(
        spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    // A brutal, unrecoverable bandwidth collapse: no bucket can meet the
    // deadlines, breach pressure stays high, safe mode must engage.
    let plan = FaultPlan::single(FaultEvent::permanent(
        30.0,
        Fault::BandwidthDegrade { frac: 0.3 },
    ));
    let (tracer, sink) = Tracer::shared(MemorySink::new());
    let mut ctl = AumController::new(model);
    let out = run_experiment_traced(
        &cfg_with(Some(BeKind::SpecJbb), 180, plan),
        &mut ctl,
        tracer,
    );
    assert!(
        ctl.safe_mode_entries() >= 1,
        "persistent breach pressure must reach safe mode"
    );
    // Entry (and the degraded step before it) are visible in the trace.
    let records = sink.lock().expect("sink lock").records().to_vec();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, Event::SafeModeTransition { .. })),
        "safe-mode transitions must stream to the tracer"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, Event::FaultInjected { .. })),
        "fault injection must stream to the tracer"
    );
    // Shedding BE is graceful: serving continues on the degraded platform.
    assert!(out.completed > 0);
    assert!(out.decode_tps > 0.0);
}

#[test]
fn multi_fault_chaos_script_emits_ordered_telemetry() {
    let spec = PlatformSpec::gen_a();
    let plan = FaultPlan::new(vec![
        FaultEvent::windowed(40.0, 100.0, Fault::BandwidthDegrade { frac: 0.7 }),
        FaultEvent::windowed(60.0, 120.0, Fault::BeSurge { factor: 2.5 }),
        FaultEvent::permanent(90.0, Fault::SensorDropout),
        // Scheduled past the run window: warned about, never fired.
        FaultEvent::permanent(400.0, Fault::CoreOffline { count: 4 }),
    ]);
    let (tracer, sink) = Tracer::shared(MemorySink::new());
    let out = run_experiment_traced(
        &cfg_with(Some(BeKind::SpecJbb), 180, plan),
        &mut AllAu::new(&spec),
        tracer,
    );
    let records = sink.lock().expect("sink lock").records().to_vec();
    let injected: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.event, Event::FaultInjected { .. }))
        .collect();
    let recovered: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.event, Event::FaultRecovered { .. }))
        .collect();
    let warned: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.event, Event::FaultOutsideWindow { .. }))
        .collect();
    assert_eq!(
        injected.len(),
        3,
        "three in-window events fire exactly once"
    );
    assert_eq!(recovered.len(), 2, "both windowed events recover");
    assert_eq!(warned.len(), 1, "the out-of-window event is warned about");
    // Injections arrive in script order at their scheduled boundaries.
    assert!(injected[0].at <= injected[1].at && injected[1].at <= injected[2].at);
    assert!(out.completed > 0, "the chaos run still serves");
}

#[test]
fn fault_is_deterministic_too() {
    let spec = PlatformSpec::gen_a();
    let cfg = bw_fault_cfg(None);
    let a = run_experiment(&cfg, &mut AllAu::new(&spec));
    let b = run_experiment(&cfg, &mut AllAu::new(&spec));
    assert_eq!(a.decode_tps.to_bits(), b.decode_tps.to_bits());
    assert_eq!(
        a.slo.tpot_guarantee.to_bits(),
        b.slo.tpot_guarantee.to_bits()
    );
    // Sensor-noise runs are deterministic as well: the corruption stream
    // is seeded from the experiment seed.
    let noisy = cfg_with(
        None,
        120,
        FaultPlan::single(FaultEvent::permanent(
            20.0,
            Fault::SensorNoise { sigma: 0.4 },
        )),
    );
    let c = run_experiment(&noisy, &mut AllAu::new(&spec));
    let d = run_experiment(&noisy, &mut AllAu::new(&spec));
    assert_eq!(c.decode_tps.to_bits(), d.decode_tps.to_bits());
}
