//! Failure-injection tests: the managed system must degrade gracefully and
//! the AUM controller must *react* to a mid-run platform fault (a memory
//! bandwidth collapse) rather than keep harvesting into the wall.

use aum::baselines::{AllAu, StaticBest};
use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig, Fault};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

fn faulty_cfg(be: Option<BeKind>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, be);
    cfg.duration = SimDuration::from_secs(240);
    // Memory RAS event at t=120 s: pool collapses to 60% of spec.
    cfg.fault = Some(Fault::BandwidthDegrade {
        at_secs: 120.0,
        frac: 0.6,
    });
    cfg
}

#[test]
fn bandwidth_fault_degrades_exclusive_serving() {
    let spec = PlatformSpec::gen_a();
    let healthy = run_experiment(
        &ExperimentConfig {
            fault: None,
            ..faulty_cfg(None)
        },
        &mut AllAu::new(&spec),
    );
    let faulted = run_experiment(&faulty_cfg(None), &mut AllAu::new(&spec));
    assert!(
        faulted.slo.tpot_guarantee < healthy.slo.tpot_guarantee,
        "a 40% bandwidth loss must cost decode SLOs: {} vs {}",
        faulted.slo.tpot_guarantee,
        healthy.slo.tpot_guarantee
    );
    // The system keeps serving — degradation, not collapse.
    assert!(faulted.decode_tps > healthy.decode_tps * 0.5);
}

#[test]
fn aum_reacts_to_the_fault_where_static_best_cannot() {
    let spec = PlatformSpec::gen_a();
    let model = build_model(&ProfilerConfig::paper_default(
        spec.clone(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let cfg = faulty_cfg(Some(BeKind::SpecJbb));

    let mut aum = AumController::new(model.clone());
    let aum_out = run_experiment(&cfg, &mut aum);
    // The controller must visibly respond after the fault: tuning steps
    // and/or division switches happen (the fault makes measured TPOT
    // violate the profiled expectations).
    assert!(
        aum.tune_count() + aum.switch_count() > 0,
        "the controller must react to the bandwidth collapse"
    );

    let static_out = run_experiment(&cfg, &mut StaticBest::new(&model));
    // AUM's post-fault response (returning harvested bandwidth to the AU
    // class) must not leave it behind the frozen configuration on SLOs.
    assert!(
        aum_out.slo.tpot_guarantee >= static_out.slo.tpot_guarantee - 0.1,
        "AUM {} vs STATIC-BEST {}",
        aum_out.slo.tpot_guarantee,
        static_out.slo.tpot_guarantee
    );
}

#[test]
fn fault_is_deterministic_too() {
    let spec = PlatformSpec::gen_a();
    let cfg = faulty_cfg(None);
    let a = run_experiment(&cfg, &mut AllAu::new(&spec));
    let b = run_experiment(&cfg, &mut AllAu::new(&spec));
    assert_eq!(a.decode_tps.to_bits(), b.decode_tps.to_bits());
    assert_eq!(
        a.slo.tpot_guarantee.to_bits(),
        b.slo.tpot_guarantee.to_bits()
    );
}
