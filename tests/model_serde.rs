//! Persistence of profiling artifacts and configuration types: the AUV
//! model must survive the save/load cycle a fleet deployment implies
//! (profile once on a dedicated node, ship to thousands of servers,
//! §VII-D).

use aum::experiment::ExperimentConfig;
use aum::fault::{Fault, FaultEvent, FaultPlan};
use aum::profiler::{build_model, AuvModel, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;
use aum_workloads::be::BeKind;

#[test]
fn auv_model_survives_fleet_distribution() {
    let model = build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let path = std::env::temp_dir().join("aum_integration_model.json");
    model.save(&path).expect("save model");
    let loaded = AuvModel::load(&path).expect("load model");
    assert_eq!(loaded.div_count, model.div_count);
    assert_eq!(loaded.cfg_count, model.cfg_count);
    assert_eq!(loaded.platform, model.platform);
    assert_eq!(loaded.scenario, model.scenario);
    for (a, b) in model.buckets.iter().zip(&loaded.buckets) {
        assert_eq!(a.division, b.division);
        assert!((a.efficiency - b.efficiency).abs() < 1e-9);
        assert!((a.power_w - b.power_w).abs() < 1e-9);
        assert!((a.tpot_p90 - b.tpot_p90).abs() < 1e-9);
    }
    // A loaded model must drive a controller identically to the original.
    let from_original = aum::controller::AumController::new(model).current_bucket();
    let from_loaded = aum::controller::AumController::new(loaded).current_bucket();
    assert_eq!(from_original, from_loaded);
    let _ = std::fs::remove_file(path);
}

#[test]
fn model_footprint_is_negligible() {
    // §VII-D: ≈15 MB for model + runtime info on a 256 GB machine; our
    // bucket table alone is a few KB.
    let model = build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    assert!(model.approx_size_bytes() < 15 * 1024 * 1024);
}

#[test]
fn experiment_config_round_trips_as_json() {
    let cfg = ExperimentConfig::paper_default(
        PlatformSpec::gen_c(),
        Scenario::Summarization,
        Some(BeKind::Olap),
    );
    let json = serde_json::to_string(&cfg).expect("encode");
    let back: ExperimentConfig = serde_json::from_str(&json).expect("decode");
    assert_eq!(back, cfg);
}

#[test]
fn fault_plan_round_trips_inside_a_config() {
    let mut cfg = ExperimentConfig::paper_default(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        Some(BeKind::SpecJbb),
    );
    cfg.fault = FaultPlan::new(vec![
        FaultEvent::windowed(10.0, 50.0, Fault::BandwidthDegrade { frac: 0.6 }),
        FaultEvent::permanent(80.0, Fault::SensorNoise { sigma: 0.3 }),
        FaultEvent::permanent(
            90.0,
            Fault::FrequencyLicenseLock {
                level: AuUsageLevel::High,
            },
        ),
        FaultEvent::permanent(95.0, Fault::SensorDropout),
    ]);
    let json = serde_json::to_string(&cfg).expect("encode");
    let back: ExperimentConfig = serde_json::from_str(&json).expect("decode");
    assert_eq!(back, cfg);
}

#[test]
fn healthy_config_renders_fault_as_null() {
    let cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, None);
    let json = serde_json::to_string(&cfg).expect("encode");
    assert!(
        json.contains("\"fault\":null") || json.contains("\"fault\": null"),
        "an empty plan keeps the legacy null rendering: {json}"
    );
    let back: ExperimentConfig = serde_json::from_str(&json).expect("decode");
    assert!(back.fault.is_empty());
    assert_eq!(back, cfg);
}

#[test]
fn legacy_single_fault_configs_still_parse() {
    // Pre-FaultPlan configs carried `"fault": {"BandwidthDegrade":
    // {"at_secs": ..., "frac": ...}}` (an `Option<Fault>` with the timing
    // inside the variant). They must deserialize into a one-event plan.
    let legacy = r#"{"BandwidthDegrade":{"at_secs":120.0,"frac":0.6}}"#;
    let plan: FaultPlan = serde_json::from_str(legacy).expect("legacy decode");
    assert_eq!(plan.events.len(), 1);
    assert!((plan.events[0].at_secs - 120.0).abs() < 1e-12);
    assert_eq!(plan.events[0].recover_at_secs, None);
    assert!(
        matches!(plan.events[0].fault, Fault::BandwidthDegrade { frac } if (frac - 0.6).abs() < 1e-12)
    );

    // The same shape embedded in a full config.
    let healthy = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, None);
    let json = serde_json::to_string(&healthy).expect("encode");
    let legacy_cfg = json.replace(
        "\"fault\":null",
        "\"fault\":{\"BandwidthDegrade\":{\"at_secs\":120.0,\"frac\":0.6}}",
    );
    assert_ne!(legacy_cfg, json, "replacement must have happened");
    let back: ExperimentConfig = serde_json::from_str(&legacy_cfg).expect("legacy config decode");
    assert_eq!(back.fault.events.len(), 1);
}

#[test]
fn malformed_fault_plans_are_rejected() {
    for bad in [
        // Negative injection time.
        r#"{"events":[{"at_secs":-1.0,"fault":{"BandwidthDegrade":{"frac":0.5}}}]}"#,
        // Out-of-range bandwidth fraction.
        r#"{"events":[{"at_secs":10.0,"fault":{"BandwidthDegrade":{"frac":1.5}}}]}"#,
        // Recovery before injection.
        r#"{"events":[{"at_secs":10.0,"recover_at_secs":5.0,"fault":"SensorDropout"}]}"#,
        // Unknown fault kind.
        r#"{"events":[{"at_secs":10.0,"fault":{"MeteorStrike":{}}}]}"#,
    ] {
        assert!(
            serde_json::from_str::<FaultPlan>(bad).is_err(),
            "must reject: {bad}"
        );
    }
}

#[test]
fn corrupted_model_is_rejected() {
    let path = std::env::temp_dir().join("aum_corrupt_model.json");
    std::fs::write(&path, "{ not valid json").expect("write");
    let err = AuvModel::load(&path).unwrap_err();
    assert!(format!("{err}").contains("encoding"), "got: {err}");
    let _ = std::fs::remove_file(path);
}
