//! Persistence of profiling artifacts and configuration types: the AUV
//! model must survive the save/load cycle a fleet deployment implies
//! (profile once on a dedicated node, ship to thousands of servers,
//! §VII-D).

use aum::cluster::{ClusterConfig, RoutingPolicy};
use aum::experiment::ExperimentConfig;
use aum::fault::{Fault, FaultEvent, FaultPlan};
use aum::fleet::{FleetParams, NodeFault, NodeFaultEvent, NodeFaultPlan};
use aum::profiler::{build_model, AuvModel, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;
use aum_workloads::be::BeKind;

#[test]
fn auv_model_survives_fleet_distribution() {
    let model = build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let path = std::env::temp_dir().join("aum_integration_model.json");
    model.save(&path).expect("save model");
    let loaded = AuvModel::load(&path).expect("load model");
    assert_eq!(loaded.div_count, model.div_count);
    assert_eq!(loaded.cfg_count, model.cfg_count);
    assert_eq!(loaded.platform, model.platform);
    assert_eq!(loaded.scenario, model.scenario);
    for (a, b) in model.buckets.iter().zip(&loaded.buckets) {
        assert_eq!(a.division, b.division);
        assert!((a.efficiency - b.efficiency).abs() < 1e-9);
        assert!((a.power_w - b.power_w).abs() < 1e-9);
        assert!((a.tpot_p90 - b.tpot_p90).abs() < 1e-9);
    }
    // A loaded model must drive a controller identically to the original.
    let from_original = aum::controller::AumController::new(model).current_bucket();
    let from_loaded = aum::controller::AumController::new(loaded).current_bucket();
    assert_eq!(from_original, from_loaded);
    let _ = std::fs::remove_file(path);
}

#[test]
fn model_footprint_is_negligible() {
    // §VII-D: ≈15 MB for model + runtime info on a 256 GB machine; our
    // bucket table alone is a few KB.
    let model = build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    assert!(model.approx_size_bytes() < 15 * 1024 * 1024);
}

#[test]
fn experiment_config_round_trips_as_json() {
    let cfg = ExperimentConfig::paper_default(
        PlatformSpec::gen_c(),
        Scenario::Summarization,
        Some(BeKind::Olap),
    );
    let json = serde_json::to_string(&cfg).expect("encode");
    let back: ExperimentConfig = serde_json::from_str(&json).expect("decode");
    assert_eq!(back, cfg);
}

#[test]
fn fault_plan_round_trips_inside_a_config() {
    let mut cfg = ExperimentConfig::paper_default(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        Some(BeKind::SpecJbb),
    );
    cfg.fault = FaultPlan::new(vec![
        FaultEvent::windowed(10.0, 50.0, Fault::BandwidthDegrade { frac: 0.6 }),
        FaultEvent::permanent(80.0, Fault::SensorNoise { sigma: 0.3 }),
        FaultEvent::permanent(
            90.0,
            Fault::FrequencyLicenseLock {
                level: AuUsageLevel::High,
            },
        ),
        FaultEvent::permanent(95.0, Fault::SensorDropout),
    ]);
    let json = serde_json::to_string(&cfg).expect("encode");
    let back: ExperimentConfig = serde_json::from_str(&json).expect("decode");
    assert_eq!(back, cfg);
}

#[test]
fn healthy_config_renders_fault_as_null() {
    let cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, None);
    let json = serde_json::to_string(&cfg).expect("encode");
    assert!(
        json.contains("\"fault\":null") || json.contains("\"fault\": null"),
        "an empty plan keeps the legacy null rendering: {json}"
    );
    let back: ExperimentConfig = serde_json::from_str(&json).expect("decode");
    assert!(back.fault.is_empty());
    assert_eq!(back, cfg);
}

#[test]
fn legacy_single_fault_configs_still_parse() {
    // Pre-FaultPlan configs carried `"fault": {"BandwidthDegrade":
    // {"at_secs": ..., "frac": ...}}` (an `Option<Fault>` with the timing
    // inside the variant). They must deserialize into a one-event plan.
    let legacy = r#"{"BandwidthDegrade":{"at_secs":120.0,"frac":0.6}}"#;
    let plan: FaultPlan = serde_json::from_str(legacy).expect("legacy decode");
    assert_eq!(plan.events.len(), 1);
    assert!((plan.events[0].at_secs - 120.0).abs() < 1e-12);
    assert_eq!(plan.events[0].recover_at_secs, None);
    assert!(
        matches!(plan.events[0].fault, Fault::BandwidthDegrade { frac } if (frac - 0.6).abs() < 1e-12)
    );

    // The same shape embedded in a full config.
    let healthy = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, None);
    let json = serde_json::to_string(&healthy).expect("encode");
    let legacy_cfg = json.replace(
        "\"fault\":null",
        "\"fault\":{\"BandwidthDegrade\":{\"at_secs\":120.0,\"frac\":0.6}}",
    );
    assert_ne!(legacy_cfg, json, "replacement must have happened");
    let back: ExperimentConfig = serde_json::from_str(&legacy_cfg).expect("legacy config decode");
    assert_eq!(back.fault.events.len(), 1);
}

#[test]
fn malformed_fault_plans_are_rejected() {
    for bad in [
        // Negative injection time.
        r#"{"events":[{"at_secs":-1.0,"fault":{"BandwidthDegrade":{"frac":0.5}}}]}"#,
        // Out-of-range bandwidth fraction.
        r#"{"events":[{"at_secs":10.0,"fault":{"BandwidthDegrade":{"frac":1.5}}}]}"#,
        // Recovery before injection.
        r#"{"events":[{"at_secs":10.0,"recover_at_secs":5.0,"fault":"SensorDropout"}]}"#,
        // Unknown fault kind.
        r#"{"events":[{"at_secs":10.0,"fault":{"MeteorStrike":{}}}]}"#,
    ] {
        assert!(
            serde_json::from_str::<FaultPlan>(bad).is_err(),
            "must reject: {bad}"
        );
    }
}

#[test]
fn node_fault_plan_round_trips_every_kind() {
    let plan = NodeFaultPlan::new(vec![
        NodeFaultEvent::windowed(0, 20.0, 60.0, NodeFault::Crash),
        NodeFaultEvent::permanent(1, 30.0, NodeFault::Straggler { factor: 2.5 }),
        NodeFaultEvent::windowed(2, 40.0, 50.0, NodeFault::Partition),
        NodeFaultEvent::permanent(0, 90.0, NodeFault::Drain),
    ]);
    let json = serde_json::to_string(&plan).expect("encode");
    let back: NodeFaultPlan = serde_json::from_str(&json).expect("decode");
    assert_eq!(back, plan);
    // The healthy plan renders as null and decodes back from it.
    let empty: NodeFaultPlan = serde_json::from_str("null").expect("null decodes");
    assert!(empty.is_empty());
    assert_eq!(serde_json::to_string(&empty).expect("encode"), "null");
}

#[test]
fn malformed_node_fault_plans_are_rejected() {
    for bad in [
        // Negative injection time.
        r#"{"events":[{"node":0,"at_secs":-1.0,"fault":"Crash"}]}"#,
        // Straggler factor must exceed 1.
        r#"{"events":[{"node":0,"at_secs":10.0,"fault":{"Straggler":{"factor":1.0}}}]}"#,
        // Recovery before injection.
        r#"{"events":[{"node":0,"at_secs":10.0,"recover_at_secs":5.0,"fault":"Partition"}]}"#,
        // Unknown fault kind.
        r#"{"events":[{"node":0,"at_secs":10.0,"fault":{"MeteorStrike":{}}}]}"#,
    ] {
        assert!(
            serde_json::from_str::<NodeFaultPlan>(bad).is_err(),
            "must reject: {bad}"
        );
    }
}

#[test]
fn routing_policy_round_trips_every_variant() {
    for policy in [
        RoutingPolicy::Uniform,
        RoutingPolicy::BandwidthProportional,
        RoutingPolicy::AuvWeighted,
        RoutingPolicy::Failover,
    ] {
        let json = serde_json::to_string(&policy).expect("encode");
        let back: RoutingPolicy = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, policy, "{json}");
    }
}

#[test]
fn cluster_config_with_fleet_fields_round_trips() {
    let mut cfg = ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
    cfg.fault_plan =
        NodeFaultPlan::single(NodeFaultEvent::windowed(1, 20.0, 80.0, NodeFault::Crash));
    cfg.fleet = FleetParams {
        epoch_secs: 2.0,
        max_retries: 5,
        ..FleetParams::default()
    };
    let json = serde_json::to_string(&cfg).expect("encode");
    let back: ClusterConfig = serde_json::from_str(&json).expect("decode");
    assert_eq!(back, cfg);
}

#[test]
fn legacy_cluster_configs_without_fleet_fields_still_parse() {
    // Pre-fleet cluster JSON carried no `fault_plan`/`fleet` keys at all.
    // Build that legacy shape by stripping the exact serialized substrings
    // of the defaults from a current config's JSON.
    let cfg = ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
    let json = serde_json::to_string(&cfg).expect("encode");
    let plan_key = format!(
        ",\"fault_plan\":{}",
        serde_json::to_string(&cfg.fault_plan).expect("encode plan")
    );
    let fleet_key = format!(
        ",\"fleet\":{}",
        serde_json::to_string(&cfg.fleet).expect("encode fleet")
    );
    let legacy = json.replace(&plan_key, "").replace(&fleet_key, "");
    assert_ne!(legacy, json, "both fleet fields must have been stripped");
    assert!(!legacy.contains("fault_plan") && !legacy.contains("\"fleet\""));
    let back: ClusterConfig = serde_json::from_str(&legacy).expect("legacy cluster decode");
    assert!(back.fault_plan.is_empty(), "missing plan means healthy");
    assert_eq!(back, cfg, "defaults must reconstruct the modern config");
}

#[test]
fn partial_fleet_params_fall_back_to_documented_defaults() {
    // A hand-edited config naming only some fields: the untouched ones
    // decode as zero and normalize to the documented defaults at run time.
    let partial: FleetParams =
        serde_json::from_str(r#"{"epoch_secs":2.0,"max_retries":7}"#).expect("partial decode");
    assert_eq!(partial.epoch_secs, 2.0);
    assert_eq!(partial.max_retries, 7);
    let norm = partial.normalized();
    assert_eq!(norm.epoch_secs, 2.0);
    assert_eq!(norm.max_retries, 7);
    assert_eq!(
        norm.down_after_misses,
        FleetParams::default().down_after_misses
    );
    assert_eq!(norm.shed_headroom, FleetParams::default().shed_headroom);
}

#[test]
fn corrupted_model_is_rejected() {
    let path = std::env::temp_dir().join("aum_corrupt_model.json");
    std::fs::write(&path, "{ not valid json").expect("write");
    let err = AuvModel::load(&path).unwrap_err();
    assert!(format!("{err}").contains("encoding"), "got: {err}");
    let _ = std::fs::remove_file(path);
}
