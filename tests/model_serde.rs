//! Persistence of profiling artifacts and configuration types: the AUV
//! model must survive the save/load cycle a fleet deployment implies
//! (profile once on a dedicated node, ship to thousands of servers,
//! §VII-D).

use aum::experiment::ExperimentConfig;
use aum::profiler::{build_model, AuvModel, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_workloads::be::BeKind;

#[test]
fn auv_model_survives_fleet_distribution() {
    let model = build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let path = std::env::temp_dir().join("aum_integration_model.json");
    model.save(&path).expect("save model");
    let loaded = AuvModel::load(&path).expect("load model");
    assert_eq!(loaded.div_count, model.div_count);
    assert_eq!(loaded.cfg_count, model.cfg_count);
    assert_eq!(loaded.platform, model.platform);
    assert_eq!(loaded.scenario, model.scenario);
    for (a, b) in model.buckets.iter().zip(&loaded.buckets) {
        assert_eq!(a.division, b.division);
        assert!((a.efficiency - b.efficiency).abs() < 1e-9);
        assert!((a.power_w - b.power_w).abs() < 1e-9);
        assert!((a.tpot_p90 - b.tpot_p90).abs() < 1e-9);
    }
    // A loaded model must drive a controller identically to the original.
    let from_original = aum::controller::AumController::new(model).current_bucket();
    let from_loaded = aum::controller::AumController::new(loaded).current_bucket();
    assert_eq!(from_original, from_loaded);
    let _ = std::fs::remove_file(path);
}

#[test]
fn model_footprint_is_negligible() {
    // §VII-D: ≈15 MB for model + runtime info on a 256 GB machine; our
    // bucket table alone is a few KB.
    let model = build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    assert!(model.approx_size_bytes() < 15 * 1024 * 1024);
}

#[test]
fn experiment_config_round_trips_as_json() {
    let cfg = ExperimentConfig::paper_default(
        PlatformSpec::gen_c(),
        Scenario::Summarization,
        Some(BeKind::Olap),
    );
    let json = serde_json::to_string(&cfg).expect("encode");
    let back: ExperimentConfig = serde_json::from_str(&json).expect("decode");
    assert_eq!(back, cfg);
}

#[test]
fn corrupted_model_is_rejected() {
    let path = std::env::temp_dir().join("aum_corrupt_model.json");
    std::fs::write(&path, "{ not valid json").expect("write");
    let err = AuvModel::load(&path).unwrap_err();
    assert!(format!("{err}").contains("encoding"), "got: {err}");
    let _ = std::fs::remove_file(path);
}
