//! Integration of the Background AU Profiler and the Runtime AU Controller:
//! the model must expose the structure the controller's three stages need,
//! and the controller must behave sensibly over the model.

use aum::controller::AumController;
use aum::manager::{ResourceManager, SystemState};
use aum::profiler::{build_model, default_allocations, default_divisions, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::BeKind;

fn state(scenario: Scenario, ttft_p90: f64, tpot: f64, lag: f64) -> SystemState {
    SystemState {
        now: SimTime::from_secs(30),
        scenario,
        be: Some(BeKind::SpecJbb),
        queue_len: 0,
        head_wait: SimDuration::ZERO,
        decode_batch: 10,
        worst_lag_secs: lag,
        recent_ttft_p50: ttft_p90 * 0.7,
        recent_ttft_p90: ttft_p90,
        recent_tpot_p50: tpot,
        recent_tpot_p90: tpot * 1.1,
        power_w: 210.0,
        bw_utilization: 0.9,
    }
}

#[test]
fn model_grid_covers_divisions_and_configs() {
    let cfg =
        ProfilerConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    let model = build_model(&cfg);
    assert_eq!(model.div_count, default_divisions(&cfg.platform).len());
    assert_eq!(model.cfg_count, default_allocations(&cfg.platform).len());
    assert_eq!(model.buckets.len(), model.div_count * model.cfg_count);
    assert_eq!(model.profiling_runs, model.buckets.len() * cfg.repetitions);
}

#[test]
fn harvesting_ladder_trades_au_latency_for_sharing() {
    // Within one division, later configurations must hand the shared class
    // more throughput while AU tail latency is monotonically non-improving.
    let cfg =
        ProfilerConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    let model = build_model(&cfg);
    for d in 0..model.div_count {
        let first = model.bucket(d, 0);
        let last = model.bucket(d, model.cfg_count - 1);
        assert!(
            last.be_rate > first.be_rate * 1.5,
            "div {d}: harvesting must grow BE throughput ({} -> {})",
            first.be_rate,
            last.be_rate
        );
        assert!(
            last.tpot_p90 >= first.tpot_p90 * 0.95,
            "div {d}: AU tail cannot improve while losing resources"
        );
    }
}

#[test]
fn bigger_high_regions_cut_ttft() {
    let cfg =
        ProfilerConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    let model = build_model(&cfg);
    // Find the divisions with the largest and smallest High regions.
    let mut by_high: Vec<usize> = (0..model.div_count).collect();
    by_high.sort_by_key(|&d| model.bucket(d, 0).division.cores(AuUsageLevel::High));
    let small = model.bucket(by_high[0], 0);
    let big = model.bucket(*by_high.last().expect("non-empty"), 0);
    assert!(
        big.ttft_p90 < small.ttft_p90,
        "prefill is core-hungry: H{} ttft {} must beat H{} ttft {}",
        big.division.cores(AuUsageLevel::High),
        big.ttft_p90,
        small.division.cores(AuUsageLevel::High),
        small.ttft_p90
    );
}

#[test]
fn controller_tracks_slo_state_machine() {
    let model = build_model(&ProfilerConfig::paper_default(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let mut c = AumController::new(model);
    // Comfortable phase: positive LAG, low latencies.
    for _ in 0..30 {
        let d = c.decide(&state(Scenario::Chatbot, 0.3, 0.07, 0.08));
        assert_eq!(d.division.total_cores(), 96);
    }
    let after_calm = c.current_bucket();
    // The settled bucket should be harvesting (not the most conservative).
    assert!(
        after_calm.1 > 0,
        "comfort should lead to harvesting, got {after_calm:?}"
    );
    // Violation phase: decode behind schedule.
    for _ in 0..30 {
        let _ = c.decide(&state(Scenario::Chatbot, 0.4, 0.13, -0.04));
    }
    let after_pressure = c.current_bucket();
    let calm_bucket = {
        let m = c.model();
        m.bucket(after_calm.0, after_calm.1).clone()
    };
    let pressure_bucket = c.model().bucket(after_pressure.0, after_pressure.1).clone();
    assert!(
        pressure_bucket.tpot_p90 <= calm_bucket.tpot_p90 + 1e-9
            || pressure_bucket.allocation.au.mem_bw_frac >= calm_bucket.allocation.au.mem_bw_frac,
        "pressure must move toward AU-protecting configurations"
    );
}

#[test]
fn controller_works_for_every_scenario() {
    for scenario in Scenario::ALL {
        let model = build_model(&ProfilerConfig::smoke(
            PlatformSpec::gen_a(),
            scenario,
            BeKind::Olap,
        ));
        let mut c = AumController::new(model);
        for (ttft, tpot, lag) in [(0.1, 0.05, 0.1), (2.0, 0.2, -0.05), (0.0, 0.0, 0.0)] {
            let d = c.decide(&state(scenario, ttft, tpot, lag));
            assert_eq!(d.division.total_cores(), 96, "{scenario}: invalid division");
            assert!(d.allocation.au.llc_ways >= 1);
            assert!(d.allocation.shared.llc_ways >= 1);
        }
    }
}
