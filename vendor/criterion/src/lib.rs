//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the benchmarking surface the workspace uses — `Criterion`,
//! `benchmark_group` / `sample_size` / `finish`, `Bencher::iter`,
//! [`black_box`], `criterion_group!`, `criterion_main!` — with a simple
//! wall-clock harness: per sample the closure runs in a timed batch, and the
//! median/min/max over samples is reported. No statistical regression
//! analysis, plots or saved baselines; output is one line per benchmark.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark should roughly spend measuring.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (marker only; statistics print per-benchmark).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibration: find how many iterations fit in a per-sample time slice.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let slice = TARGET_MEASURE_TIME / sample_size.max(2) as u32;
    let iters = (slice.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "{name:<40} time:   [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("noop", |b| b.iter(|| black_box(1)));
    }
}
