//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of proptest this workspace uses: the [`Strategy`]
//! trait over numeric ranges, tuples, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`, `.prop_map(..)`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Inputs are
//! drawn from a deterministic per-case generator, so failures reproduce
//! exactly. There is **no shrinking**: a failing case panics with the
//! assertion message directly (the drawn values appear in assert output).

#![warn(missing_docs)]

/// Deterministic case-level random source.
pub mod test_runner {
    /// Per-case deterministic generator (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for one test case index; the same index
        /// always produces the same draw sequence.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x243F_6A88_85A3_08D3),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty range");
            ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while still
            // exploring the space, and determinism makes reruns identical.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategies: composable descriptions of how to draw a value.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A way of drawing values of `Value` for property tests.
    pub trait Strategy {
        /// The type of value this strategy draws.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps drawn values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes this strategy (for heterogeneous storage).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (helper for `prop_oneof!`).
    pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always draws a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniformly picks one of several alternative strategies per draw.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// String strategies from a regex-like pattern. Supports the subset
    /// used in this workspace: literal characters, `[a-z0-9_]` classes with
    /// ranges, and `{m}` / `{m,n}` / `?` / `+` / `*` quantifiers (unbounded
    /// quantifiers cap at 16 repeats).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = lo + rng.index(hi - lo + 1);
                for _ in 0..n {
                    out.push(chars[rng.index(chars.len())]);
                }
            }
            out
        }
    }

    type PatternAtom = (Vec<char>, usize, usize);

    fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<PatternAtom> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < end {
                    if j + 2 < end && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        set.extend((a..=b).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = end + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let end = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                    let body: String = chars[i + 1..end].iter().collect();
                    i = end + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("pattern repeat lower bound"),
                            b.trim().parse().expect("pattern repeat upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("pattern repeat count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('+') => {
                    i += 1;
                    (1, 16)
                }
                Some('*') => {
                    i += 1;
                    (0, 16)
                }
                _ => (1, 1),
            };
            assert!(!set.is_empty() && lo <= hi, "bad pattern {pattern:?}");
            atoms.push((set, lo, hi));
        }
        atoms
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
        (A:0, B:1, C:2, D:3, E:4, F:5)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9, K:10)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9, K:10, L:11)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only; tests never want NaN from `any`.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy drawing unconstrained values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + if span > 0 { rng.index(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Draws vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over deterministically drawn cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::for_case(u64::from(case));
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat), &mut proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Uniformly picks one of several strategies (all arms must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_strategy($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in -2.0f64..3.0, z in 0.0f64..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..3.0).contains(&y));
            prop_assert!((0.0..=1.0).contains(&z));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((1usize..4, 0.0f64..1.0), 2..6),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, f) in &v {
                prop_assert!((1..4).contains(n));
                prop_assert!((0.0..1.0).contains(f));
            }
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_honoured(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn draws_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..100, 0.0f64..1.0);
        let a = strat.sample(&mut TestRng::for_case(3));
        let b = strat.sample(&mut TestRng::for_case(3));
        assert_eq!(a, b);
    }
}
