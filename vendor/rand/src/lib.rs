//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range(Range)`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for simulation
//! workloads. It is **not** the upstream implementation, so absolute draw
//! sequences differ from crates.io `rand`; everything in this repository
//! only relies on determinism for a fixed seed, which holds.

#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }
}

/// The minimal core-generator interface.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw stream via `gen()`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `gen_range(lo..hi)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires lo < hi");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift (Lemire) without the rejection step: the
                // bias is < 2^-64 per draw, irrelevant for simulation use.
                let hi64 = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + hi64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = r.gen_range(0usize..10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
