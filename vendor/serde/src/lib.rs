//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of serde this workspace relies on: the
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize,
//! Deserialize)]` (via the sibling `serde_derive` stub) and the
//! `#[serde(default)]` field attribute. Instead of upstream's
//! visitor-driven zero-copy architecture, values round-trip through an
//! explicit [`Content`] tree — a few allocations slower, which is
//! irrelevant at the reporting boundary where this repository serializes.
//!
//! The JSON encoding produced by the sibling `serde_json` stub follows the
//! upstream conventions (externally tagged enums, transparent newtypes), so
//! artifacts written by this stub parse the same way real serde_json would
//! parse them.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value — the interchange tree between
/// [`Serialize`], [`Deserialize`] and format crates such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key/value map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up a key in map entries (helper for derived code).
#[must_use]
pub fn content_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// An error with a custom message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, when: &str, got: &Content) -> Self {
        DeError(format!("expected {what} for {when}, got {}", got.kind()))
    }

    /// A missing-field error.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` in {ty}"))
    }

    /// An unknown-enum-variant error.
    #[must_use]
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the content tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value from the content tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not describe a `Self`.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of range"))),
                    other => Err(DeError::expected("unsigned integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of range"))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of range"))),
                    other => Err(DeError::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if self.is_finite() {
                    Content::F64(f64::from(*self))
                } else {
                    // JSON has no NaN/Infinity; match serde_json's `null`.
                    Content::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// The content tree round-trips through itself, so callers can deserialize
// *any* document into `Content` (the role `serde_json::Value` plays for
// the real crates).
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

// --- composite impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == N => {
                let v: Result<Vec<T>, DeError> = items.iter().map(T::from_content).collect();
                v.map(|v| v.try_into().expect("length checked"))
            }
            other => Err(DeError::expected("fixed-size sequence", "array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match content {
                    Content::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", "tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("map", "BTreeMap", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Deterministic key order keeps serialized artifacts reproducible.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("map", "HashMap", other)),
        }
    }
}

impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        // Upstream serde borrows from the input here; this stub works on an
        // owned content tree, so the string is leaked. Bounded in practice:
        // only op-graph labels (a small fixed vocabulary) use this impl.
        match content {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", "&'static str", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", "VecDeque", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(std::rc::Rc::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        let v = vec![1.5f64, 2.5];
        assert_eq!(Vec::<f64>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::U64(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_content(), Content::Null);
        assert!(f64::from_content(&Content::Null).unwrap().is_nan());
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u64, 2.5f64, "x".to_string());
        let c = t.to_content();
        let back: (u64, f64, String) = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, t);
    }
}
