//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the derive input token stream by hand and
//! emits impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! content-tree traits. Supported shapes — the full set this workspace
//! uses — are named/tuple/unit structs and enums with unit, tuple and
//! struct variants, plus the `#[serde(default)]` field attribute. The
//! encoding matches upstream serde's conventions: externally tagged enums,
//! transparent newtype structs/variants. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`, honouring `#[serde(default)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// --- parsing -------------------------------------------------------------

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) stub does not support generic types ({name})");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Skips `#[...]` attribute groups, reporting whether any was
/// `#[serde(default)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if is_serde_default(g) {
                has_default = true;
            }
            *i += 1;
        } else {
            panic!("malformed attribute");
        }
    }
    has_default
}

fn is_serde_default(attr_body: &proc_macro::Group) -> bool {
    let inner: Vec<TokenTree> = attr_body.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let has_default = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string().trim_start_matches("r#").to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        // Parenthesized/bracketed sub-types arrive as atomic groups, so only
        // `<`/`>` puncts need depth tracking.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, has_default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut n = 0usize;
    let mut depth = 0i32;
    let mut pending = false;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if pending {
                    n += 1;
                }
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// --- codegen -------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), serde::Serialize::to_content(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Content::Str(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             serde::Serialize::to_content(x0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_content(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Content::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Content::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), serde::Serialize::to_content({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::Content::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Content::Map(vec![{}]))])",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_content(&self) -> serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_named_field_init(ty_label: &str, fields: &[Field], entries_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            let fallback = if f.has_default {
                "Default::default()".to_string()
            } else {
                format!("return Err(serde::DeError::missing_field(\"{ty_label}\", \"{n}\"))")
            };
            format!(
                "{n}: match serde::content_get({entries_var}, \"{n}\") {{ \
                 Some(v) => serde::Deserialize::from_content(v)?, None => {fallback}, }}"
            )
        })
        .collect();
    inits.join(", ")
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits = gen_named_field_init(name, fields, "entries");
            format!(
                "let entries = content.as_map().ok_or_else(|| \
                 serde::DeError::expected(\"map\", \"{name}\", content))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_content(content)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "let items = content.as_seq().ok_or_else(|| \
                 serde::DeError::expected(\"sequence\", \"{name}\", content))?;\n\
                 if items.len() != {n} {{ return Err(serde::DeError::custom(format!(\
                 \"expected {n} elements for {name}, got {{}}\", items.len()))); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = content; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn})", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_content(value)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_content(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let items = value.as_seq().ok_or_else(|| \
                                 serde::DeError::expected(\"sequence\", \"{name}::{vn}\", value))?; \
                                 if items.len() != {n} {{ return Err(serde::DeError::custom(\
                                 format!(\"expected {n} elements for {name}::{vn}, got {{}}\", \
                                 items.len()))); }} Ok({name}::{vn}({items})) }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let label = format!("{name}::{vn}");
                            let inits = gen_named_field_init(&label, fields, "fields");
                            Some(format!(
                                "\"{vn}\" => {{ let fields = value.as_map().ok_or_else(|| \
                                 serde::DeError::expected(\"map\", \"{label}\", value))?; \
                                 Ok({name}::{vn} {{ {inits} }}) }}"
                            ))
                        }
                    }
                })
                .collect();
            let mut arms_str = String::new();
            if !unit_arms.is_empty() {
                arms_str.push_str(&format!(
                    "serde::Content::Str(s) => match s.as_str() {{ {}, other => \
                     Err(serde::DeError::unknown_variant(\"{name}\", other)), }},\n",
                    unit_arms.join(", ")
                ));
            }
            if !tagged_arms.is_empty() {
                arms_str.push_str(&format!(
                    "serde::Content::Map(entries) if entries.len() == 1 => {{ \
                     let (tag, value) = &entries[0]; let _ = value; match tag.as_str() {{ {}, \
                     other => Err(serde::DeError::unknown_variant(\"{name}\", other)), }} }},\n",
                    tagged_arms.join(", ")
                ));
            }
            format!(
                "match content {{\n{arms_str}other => \
                 Err(serde::DeError::expected(\"enum representation\", \"{name}\", other)),\n}}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
