//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde` [`Content`] tree to JSON and parses JSON
//! back into it. Covers the workspace's surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and an [`Error`] type usable with
//! `?`/`From` conversions. Number formatting follows Rust's shortest-float
//! `Display`, which round-trips exactly through the parser.

#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};

/// A parsed JSON document of arbitrary shape — the serde data-model
/// content tree, re-exported under the name the real crate uses.
pub type Value = Content;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails in this implementation; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails in this implementation; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    Ok(T::from_content(&content)?)
}

// --- writer --------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&format_f64(*v));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// Formats an f64 so integral values keep a decimal point (`1.0`, not `1`),
/// matching serde_json's output and keeping the value a float on re-parse.
fn format_f64(v: f64) -> String {
    let s = v.to_string();
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Content, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            b't' => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            b'f' => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's writer; reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|v| Content::I64(-(v as i64)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nwith \"quotes\" and \\slash\\ and unicode: é€".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.25f64, -0.5, 1e10];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let json = to_string_pretty(&m).unwrap();
        assert!(json.contains('\n'), "pretty output has newlines: {json}");
        let back: std::collections::BTreeMap<String, u64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for &v in &[0.1, 1.0 / 3.0, 9.999999999999998e22, f64::MIN_POSITIVE] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
